//! Metamorphic properties: transform the input in a way whose effect on
//! the output is known, and check the relation — no external oracle needed.
//!
//! * [`permutation_invariance`] — splitter search consumes only globally
//!   summed bucket counts, so *any* redistribution/permutation of the same
//!   multiset (including ragged and empty ranks) yields bit-identical
//!   splitters and partitions.
//! * [`duplication_robustness`] — doubling every element keeps the output a
//!   valid partition of the doubled multiset: globally sorted, ownership
//!   consistent (all copies of a key land on one rank) and within the
//!   tolerance envelope. (Bit-identical splitters are *not* implied:
//!   integer targets `⌊r·2n/p⌋` round differently from `2⌊r·n/p⌋`.)
//! * [`tolerance_monotonicity`] — on the paper's §4.2 workload class,
//!   relaxing the tolerance monotonically (with slack for small-mesh
//!   noise) reduces boundary surface: `Cmax`, comm-matrix NNZ and total
//!   volume do not grow as the tolerance grows.
//! * [`scale_invariance`] — Eq. (3) is homogeneous of degree 1 in
//!   `tc`/`ts`/`tw`: a machine uniformly rescaled by a *power of two*
//!   induces bit-identical OptiPart decisions with every predicted and
//!   measured time scaled exactly, down to the trace attribution's byte
//!   counters.
//! * [`thread_count_invariance`] — the worker-thread budget is a pure
//!   execution detail: TreeSort and the fork–join primitive underneath the
//!   engine produce bit-identical output at 1 and 4 threads (the CI
//!   determinism matrix additionally runs the whole suite under both
//!   `RAYON_NUM_THREADS` values).
//! * [`warm_state_fallback`] — a corrupted or stale [`PartitionState`] is
//!   *detected* (payload self-check, rank-count fingerprint) and the run
//!   falls back to a cold ladder whose output is bit-identical to a run
//!   that never saw the state.
//! * [`rank_count_scale_invariance`] — padding the communicator with idle
//!   ranks (power-of-two boundaries, doubling, `2^k ± 1`) never perturbs a
//!   hypercube-staged exchange's deliveries, comm-matrix entries or
//!   conservation — the stage count changes, the data does not.
//! * [`front_advection`] — advancing the moving-front workload by a
//!   lattice vector translates the mesh cell-for-cell (mesh generation
//!   commutes with the translation); over a full period the partition and
//!   its quality metrics return bit-identically.

use crate::scenario::{ElemFamily, MeshShape, NamedCheck, Scenario, Workload};
use crate::{tk_assert, tk_assert_eq};
use optipart_core::metrics::{assignment, communication_matrix};
use optipart_core::optipart::{optipart_with_state, PartitionState};
use optipart_core::partition::{
    distribute_shuffled, distribute_tree, treesort_partition, PartitionOptions, PartitionOutcome,
};
use optipart_core::quality::partition_quality;
use optipart_core::treesort::treesort_threaded;
use optipart_core::{optipart, OptiPartOptions};
use optipart_mpisim::par::par_map_mut_n;
use optipart_mpisim::rng::SplitMix64;
use optipart_mpisim::{DistVec, Engine};
use optipart_octree::LinearTree;
use optipart_sfc::{Cell, KeyedCell, SfcKey, MAX_DEPTH};

/// The registry the soak driver and the tier-1 harness iterate over.
pub const PROPERTIES: &[NamedCheck] = &[
    ("permutation-invariance", permutation_invariance),
    ("duplication-robustness", duplication_robustness),
    ("tolerance-monotonicity", tolerance_monotonicity),
    ("scale-invariance", scale_invariance),
    ("thread-count-invariance", thread_count_invariance),
    ("warm-state-fallback", warm_state_fallback),
    ("rank-count-scale-invariance", rank_count_scale_invariance),
    ("front-advection", front_advection),
];

/// Metamorphic relation for the moving-front workload: advancing the front
/// by step `t` translates the point cloud by the exact lattice vector
/// `(1<<29) · (t & 1, (t>>1) & 1, (t>>2) & 1)` (wrapping mod `1<<30`), and
/// adaptive mesh generation *commutes* with that translation — so the
/// step-`t` mesh must equal, cell for cell, the base mesh with the same
/// bit flipped in every anchor (level-0 cells map to themselves). Over a
/// full period (8 steps) the translation is the identity, so the mesh,
/// the partition and its quality metrics must all return bit-identically.
///
/// Sub-period translations *permute* the level-0 octant blocks, which
/// legitimately moves splitters and `Cmax` — the invariants there are the
/// mesh-level bijection and leaf-count conservation, not partition bits.
/// The Hybrid element family hashes each leaf's key for its per-leaf mix,
/// which is deliberately not translation-invariant, so the property pins
/// the Tet family in its place.
pub fn front_advection(scn: &Scenario) {
    let mut s = scn.clone();
    s.workload = Workload::MovingFront { steps: 8 };
    if s.family == ElemFamily::Hybrid {
        s.family = ElemFamily::Tet;
    }
    const HALF: u32 = 1 << (MAX_DEPTH - 1);
    let base = s.mesh_at(0);
    for t in 1..8usize {
        let translated: Vec<Cell<3>> = base
            .leaves()
            .iter()
            .map(|kc| {
                let c = kc.cell;
                if c.level() == 0 {
                    return c;
                }
                let mut a = c.anchor();
                for (d, coord) in a.iter_mut().enumerate() {
                    if (t >> d) & 1 == 1 {
                        *coord ^= HALF;
                    }
                }
                Cell::new(a, c.level())
            })
            .collect();
        let expected = LinearTree::from_cells(translated, s.curve);
        let got = s.mesh_at(t);
        tk_assert_eq!(
            scn,
            got.len(),
            base.len(),
            "step {t}: front advection must conserve the leaf count"
        );
        tk_assert!(
            scn,
            got.leaves() == expected.leaves(),
            "step {t}: mesh generation does not commute with the lattice translation"
        );
    }

    // Full period: the translation is the identity, so mesh, partition and
    // quality must all come back bit-identical.
    let run = |tree: &LinearTree<3>, stream: u64| {
        let mut e = Engine::new(s.p, s.perf());
        let out = optipart(
            &mut e,
            distribute_shuffled(tree, s.p, s.shuffle_seed(stream)),
            OptiPartOptions {
                curve: s.curve,
                max_split_per_round: s.split_budget,
                ..Default::default()
            },
        );
        let mut eq = Engine::new(s.p, s.perf());
        let mut block = distribute_tree(tree, s.p);
        let q = partition_quality(&mut eq, &mut block, &out.splitters, s.curve);
        (out, q)
    };
    for t in [1usize, 5] {
        let a = s.mesh_at(t);
        let b = s.mesh_at(t + 8);
        tk_assert!(
            scn,
            a.leaves() == b.leaves(),
            "step {t}: the period-8 mesh identity is broken"
        );
        let (oa, qa) = run(&a, 41);
        let (ob, qb) = run(&b, 41);
        tk_assert!(
            scn,
            oa.splitters == ob.splitters,
            "step {t}: full-period splitters diverge"
        );
        tk_assert_eq!(
            scn,
            oa.report.counts,
            ob.report.counts,
            "step {t}: full-period partition counts diverge"
        );
        tk_assert!(
            scn,
            qa.wmax == qb.wmax
                && qa.cmax == qb.cmax
                && qa.cmax_intra == qb.cmax_intra
                && qa.c_total == qb.c_total
                && qa.c_intra_total == qb.c_intra_total
                && qa.mmax == qb.mmax
                && qa.tp.to_bits() == qb.tp.to_bits(),
            "step {t}: full-period quality diverges ({qa:?} vs {qb:?})"
        );
    }
}

/// Hypercube stage count for a `p`-rank exchange — an independent
/// re-statement of the engine's staging schedule (`⌈log₂ p⌉`).
fn hypercube_stages(p: usize) -> u32 {
    if p <= 1 {
        0
    } else {
        usize::BITS - (p - 1).leading_zeros()
    }
}

/// Metamorphic relation: a hypercube-staged exchange is a function of the
/// *routes*, not of the communicator size. Padding the same logical
/// traffic (among ranks `0..p`) out to a larger communicator — the next
/// power of two, one past it, one short of the double, and the double —
/// changes the stage schedule and the forwarding paths, but must leave
/// every delivered payload, every comm-matrix entry and the conservation
/// totals bit-identical, with all pad ranks silent. The per-element
/// routing itself is re-derived analytically: walking a route's holder
/// through all `⌈log₂ p⌉` stages lands on its destination at every padded
/// rank count.
pub fn rank_count_scale_invariance(scn: &Scenario) {
    let p0 = scn.p;
    let traffic = crate::oracles::collective_traffic(scn);
    let sent_elems: usize = traffic.iter().flatten().map(|(_, b)| b.len()).sum();

    // Analytic leg: the stage walk `holder += 2^k (mod p)` for every set
    // bit of `(dst − src) mod p` reaches `dst` at every padded count.
    let pow2 = p0.next_power_of_two();
    let mut pads = vec![pow2, pow2 + 1, 2 * pow2 - 1, 2 * pow2];
    pads.dedup();
    for &p in &pads {
        for (src, row) in traffic.iter().enumerate() {
            for (dst, _) in row {
                let off = (dst + p - src) % p;
                let mut holder = src;
                for k in 0..hypercube_stages(p) {
                    let hop = 1usize << k;
                    if off & hop != 0 {
                        holder = (holder + hop) % p;
                    }
                }
                tk_assert_eq!(
                    scn,
                    holder,
                    *dst,
                    "p = {p}: stage walk for route {src}->{dst} strands at {holder}"
                );
            }
        }
    }

    // Engine leg: the same routes through the real hypercube staging at
    // every padded count, compared field by field against the base run.
    let run = |p: usize| {
        let mut e = Engine::new(p, scn.perf()).record_comm_matrix();
        let mut send = traffic.clone();
        send.resize_with(p, Vec::new);
        let recv = e.alltoallv_sparse(send, optipart_mpisim::AllToAllAlgo::Hypercube);
        let mut entries: Vec<(usize, usize, u64)> =
            e.comm_matrix().expect("recording on").entries().collect();
        entries.sort_unstable();
        let bytes = e.stats().bytes_total;
        (recv, entries, bytes)
    };
    let (base_recv, base_entries, base_bytes) = run(p0);
    let got_elems: usize = base_recv.iter().flatten().map(|(_, b)| b.len()).sum();
    tk_assert_eq!(
        scn,
        got_elems,
        sent_elems,
        "base run lost or duplicated elements"
    );
    for &p in &pads {
        let (recv, entries, bytes) = run(p);
        for (dst, want) in base_recv.iter().enumerate() {
            tk_assert!(
                scn,
                &recv[dst] == want,
                "p = {p}: delivery to rank {dst} diverges from the {p0}-rank run"
            );
        }
        for row in &recv[p0..] {
            tk_assert!(scn, row.is_empty(), "p = {p}: a pad rank received data");
        }
        tk_assert_eq!(
            scn,
            entries,
            base_entries,
            "p = {p}: comm-matrix entries diverge from the {p0}-rank run"
        );
        tk_assert_eq!(
            scn,
            bytes,
            base_bytes,
            "p = {p}: byte conservation diverges from the {p0}-rank run"
        );
    }
}

/// Shuffles `leaves` and cuts them into `p` ragged (possibly empty) rank
/// buffers — the adversarial initial distribution.
fn ragged_distribution(leaves: &[KeyedCell<3>], p: usize, seed: u64) -> DistVec<KeyedCell<3>> {
    let mut rng = SplitMix64::new(seed);
    let mut shuffled = leaves.to_vec();
    rng.shuffle(&mut shuffled);
    let mut cuts: Vec<usize> = (0..p - 1)
        .map(|_| rng.next_below(shuffled.len() as u64 + 1) as usize)
        .collect();
    cuts.sort_unstable();
    let mut parts: Vec<Vec<KeyedCell<3>>> = Vec::with_capacity(p);
    let mut lo = 0;
    for &c in &cuts {
        parts.push(shuffled[lo..c].to_vec());
        lo = c;
    }
    parts.push(shuffled[lo..].to_vec());
    DistVec::from_parts(parts)
}

/// Splitter refinement sees only global bucket counts, so the initial
/// placement of elements — block, shuffled, ragged, even empty ranks — must
/// not leak into the result: bit-identical splitters and slices.
pub fn permutation_invariance(scn: &Scenario) {
    let tree = scn.build_tree();
    let p = scn.p;
    let a = {
        let mut e = scn.engine();
        treesort_partition(&mut e, distribute_tree(&tree, p), scn.opts())
    };
    let b = {
        let mut e = scn.engine();
        let ragged = ragged_distribution(tree.leaves(), p, scn.shuffle_seed(10));
        treesort_partition(&mut e, ragged, scn.opts())
    };
    tk_assert!(
        scn,
        a.splitters == b.splitters,
        "initial distribution leaked into the splitters"
    );
    for r in 0..p {
        tk_assert!(
            scn,
            a.dist.rank(r) == b.dist.rank(r),
            "initial distribution leaked into rank {r}'s slice"
        );
    }
}

/// Duplicating every element must still yield a valid partition of the
/// doubled multiset — sorted global order, all copies of a key on one
/// rank, tolerance honoured (in the doubled grain).
pub fn duplication_robustness(scn: &Scenario) {
    let tree = scn.build_tree();
    let p = scn.p;
    let mut doubled: Vec<KeyedCell<3>> = tree.leaves().to_vec();
    doubled.extend_from_slice(tree.leaves());
    let mut expected = doubled.clone();
    expected.sort_unstable();

    let mut e = scn.engine();
    let out = treesort_partition(
        &mut e,
        ragged_distribution(&doubled, p, scn.shuffle_seed(11)),
        scn.opts(),
    );
    tk_assert!(
        scn,
        out.dist.concat() == expected,
        "duplicated input: output is not the sorted doubled multiset"
    );
    // No key straddles a rank boundary: owner_of is a function of the key,
    // so the last key of rank r must be strictly below the first key of
    // the next non-empty rank.
    let mut prev_last: Option<SfcKey> = None;
    for r in 0..p {
        let buf = out.dist.rank(r);
        if buf.is_empty() {
            continue;
        }
        if let Some(last) = prev_last {
            tk_assert!(
                scn,
                last < buf[0].key,
                "duplicated key straddles the boundary into rank {r}"
            );
        }
        prev_last = Some(buf[buf.len() - 1].key);
    }
    // With fewer distinct keys than ranks the search pads tail splitters
    // with `SfcKey::MAX` and reports achieved tolerance 1.0 — the envelope
    // claim only applies when p − 1 distinct boundaries exist at all.
    let distinct = {
        let mut keys: Vec<SfcKey> = expected.iter().map(|c| c.key).collect();
        keys.dedup();
        keys.len()
    };
    if scn.tolerance < 0.45 && doubled.len() >= p && distinct >= p {
        // Duplicated keys shift every splittable boundary to an even
        // count, so an odd target can sit one element off its nearest
        // boundary no matter how far the search refines — allow exactly
        // that one grain of slack on top of the request.
        let one_element = p as f64 / doubled.len() as f64;
        tk_assert!(
            scn,
            out.report.achieved_tolerance <= scn.tolerance + one_element + 1e-9,
            "duplicated input: achieved tolerance {} exceeds requested {} + 1 element",
            out.report.achieved_tolerance,
            scn.tolerance
        );
    }
}

/// Slack factors for the monotone-surface claim: the trend is the paper's
/// (Fig. 2/3, Fig. 12), but at fuzz-scale meshes (hundreds to a few
/// thousand leaves, grains of tens of elements) individual partitions are
/// surface-noisy — soak calibration saw legitimate local upticks of ~35%
/// (e.g. Cmax [96, 82, 111] on a 1.1K-leaf log-normal mesh). Each value
/// is therefore checked against the running *minimum* so far times this
/// factor plus a small absolute allowance: noise passes, while an
/// implementation whose surface genuinely grows with tolerance compounds
/// past the envelope within a step or two.
const MONO_REL: f64 = 1.6;
const MONO_ABS: f64 = 8.0;

/// Relaxing the tolerance must not (beyond noise) grow `Cmax`, the
/// comm-matrix NNZ or the total communication volume. Restricted to the
/// §4.2 workload class the paper makes the claim for, and to scenarios
/// with enough elements per rank for the trend to be meaningful.
pub fn tolerance_monotonicity(scn: &Scenario) {
    if matches!(scn.shape, MeshShape::Surface | MeshShape::Skewed) {
        return;
    }
    let tree = scn.build_tree();
    let p = scn.p;
    if tree.len() < 8 * p {
        return;
    }
    let mut cmax = Vec::new();
    let mut nnz = Vec::new();
    let mut volume = Vec::new();
    for tol in [0.0, 0.3, 0.6] {
        let mut e = scn.engine();
        let out = treesort_partition(
            &mut e,
            distribute_tree(&tree, p),
            PartitionOptions {
                tolerance: tol,
                max_split_per_round: scn.split_budget,
                ..Default::default()
            },
        );
        let mut eq = scn.engine();
        let mut block = distribute_tree(&tree, p);
        let q = partition_quality(&mut eq, &mut block, &out.splitters, scn.curve);
        cmax.push(q.cmax);
        let m = communication_matrix(&tree, &assignment(&tree, &out.splitters), p);
        nnz.push(m.nnz() as u64);
        volume.push(m.total_bytes());
    }
    for (name, series) in [("Cmax", &cmax), ("NNZ", &nnz), ("volume", &volume)] {
        let mut floor = series[0] as f64;
        for &w in &series[1..] {
            tk_assert!(
                scn,
                (w as f64) <= floor * MONO_REL + MONO_ABS,
                "{name} grew with tolerance beyond noise: {series:?}"
            );
            floor = floor.min(w as f64);
        }
    }
}

/// The thread budget must never leak into results. Checked with *explicit*
/// budgets (`par_map_mut_n`, [`treesort_threaded`]) so the property is
/// deterministic regardless of the environment the test runs under; the CI
/// determinism matrix covers the `RAYON_NUM_THREADS` env path by running
/// the whole tier-1 suite at 1 and 4 threads.
pub fn thread_count_invariance(scn: &Scenario) {
    let tree = scn.build_tree();
    let mut cells: Vec<KeyedCell<3>> = tree.leaves().to_vec();
    if cells.is_empty() {
        return;
    }
    SplitMix64::new(scn.shuffle_seed(15)).shuffle(&mut cells);
    // Tile past the parallel-recursion cutoff so the multi-threaded sort
    // actually fans out (fuzz meshes alone stay below it).
    while cells.len() <= optipart_core::treesort::PAR_CUTOFF {
        let copy = cells.clone();
        cells.extend_from_slice(&copy);
    }
    let mut expected = cells.clone();
    treesort_threaded(&mut expected, 1);
    for threads in [2usize, 4] {
        let mut a = cells.clone();
        treesort_threaded(&mut a, threads);
        tk_assert!(
            scn,
            a == expected,
            "treesort output changed between 1 and {threads} threads ({} cells)",
            cells.len()
        );
    }
    // The fork–join primitive the engine's compute phases are built on:
    // per-rank buffers mutated under different budgets must stitch back
    // bit-identically.
    let buffers: Vec<Vec<u64>> = (0..scn.p)
        .map(|r| (0..64).map(|i| (r * 1000 + i) as u64).collect())
        .collect();
    let mut expected_buffers = buffers.clone();
    let expected_sums = par_map_mut_n(1, &mut expected_buffers, |i, buf| {
        buf.iter_mut()
            .for_each(|x| *x = x.wrapping_mul(31) ^ i as u64);
        buf.iter().fold(0u64, |a, &x| a.wrapping_add(x))
    });
    for threads in [2usize, 4] {
        let mut b = buffers.clone();
        let sums = par_map_mut_n(threads, &mut b, |i, buf| {
            buf.iter_mut()
                .for_each(|x| *x = x.wrapping_mul(31) ^ i as u64);
            buf.iter().fold(0u64, |a, &x| a.wrapping_add(x))
        });
        tk_assert_eq!(
            scn,
            &sums,
            &expected_sums,
            "par_map_mut_n results changed at {threads} threads"
        );
        tk_assert!(
            scn,
            b == expected_buffers,
            "par_map_mut_n mutations changed at {threads} threads"
        );
    }
}

/// A warm-start cache must be safe by construction: tamper with it or
/// offer it to the wrong machine and the partitioner *detects* the problem
/// and produces output bit-identical to a run that never saw the state.
///
/// Three metamorphic legs on the scenario's own mesh:
/// 1. *Corrupted*: prime a state, flip a bit in its payload behind the
///    signature's back — the self-check rejects it (`stats.rejected`) and
///    the cold fallback matches the reference.
/// 2. *Re-seeded*: the rejection re-seeds the cache; an immediate rerun is
///    an exact hit and still matches.
/// 3. *Stale rank count*: the cache offered to a `p − 1` engine is
///    invalidated (`stats.invalidated`, the shrink-recovery path) and the
///    cold fallback matches a fresh `p − 1` reference.
pub fn warm_state_fallback(scn: &Scenario) {
    let tree = scn.build_tree();
    let p = scn.p;
    let opts = OptiPartOptions {
        curve: scn.curve,
        max_split_per_round: scn.split_budget,
        ..Default::default()
    };
    let assert_identical = |what: &str, got: &PartitionOutcome<3>, want: &PartitionOutcome<3>| {
        tk_assert!(
            scn,
            got.splitters == want.splitters,
            "{what}: splitters diverge from the state-free reference"
        );
        tk_assert!(
            scn,
            got.dist.concat() == want.dist.concat(),
            "{what}: partitioned data diverges from the state-free reference"
        );
        tk_assert!(
            scn,
            got.report.counts == want.report.counts
                && got.report.predicted_tp.to_bits() == want.report.predicted_tp.to_bits(),
            "{what}: report diverges from the state-free reference"
        );
    };

    let input = distribute_shuffled(&tree, p, scn.shuffle_seed(16));
    let mut ec = scn.engine();
    let want = optipart(&mut ec, input.clone(), opts);

    // Leg 1: corrupted payload → detected → cold fallback identical.
    let mut state = PartitionState::new();
    let mut e1 = scn.engine();
    let _ = optipart_with_state(&mut e1, input.clone(), opts, &mut state);
    tk_assert!(
        scn,
        state.corrupt_for_test(),
        "the priming run must seed a cache entry"
    );
    let mut e2 = scn.engine();
    let got = optipart_with_state(&mut e2, input.clone(), opts, &mut state);
    tk_assert_eq!(
        scn,
        state.stats.rejected,
        1,
        "the payload self-check must fire exactly once"
    );
    assert_identical("corrupted state", &got, &want);

    // Leg 2: the rejection re-seeded the cache cold — a rerun is an exact
    // hit and still identical.
    let hits_before = state.stats.hits;
    let mut e3 = scn.engine();
    let got = optipart_with_state(&mut e3, input.clone(), opts, &mut state);
    tk_assert_eq!(
        scn,
        state.stats.hits,
        hits_before + 1,
        "the re-seeded entry must serve an exact hit"
    );
    assert_identical("re-seeded state", &got, &want);

    // Leg 3: the same cache offered to a shrunk machine (p − 1 ranks, the
    // post-recovery configuration) is invalidated and falls back cold.
    if p > 2 {
        let q = p - 1;
        let input_q = distribute_shuffled(&tree, q, scn.shuffle_seed(17));
        let mut eq_cold = Engine::new(q, scn.perf());
        let want_q = optipart(&mut eq_cold, input_q.clone(), opts);
        let invalidated_before = state.stats.invalidated;
        let mut eq_warm = Engine::new(q, scn.perf());
        let got_q = optipart_with_state(&mut eq_warm, input_q, opts, &mut state);
        tk_assert!(
            scn,
            state.stats.invalidated > invalidated_before,
            "a rank-count change must invalidate the cache"
        );
        assert_identical("stale rank count", &got_q, &want_q);
    }
}

/// Power-of-two factors keep `x * c` bit-exact in IEEE 754 (pure exponent
/// shift), so every comparison OptiPart makes on the scaled machine is
/// *identical*, not merely close.
const SCALE_FACTORS: [f64; 2] = [4.0, 0.25];

/// A machine with `tc`/`ts`/`tw` uniformly rescaled by a power of two must
/// produce bit-identical OptiPart decisions (splitters, counts) with
/// `predicted_tp` scaled exactly, and a trace attribution whose byte
/// counters are unchanged while every modelled time scales exactly.
pub fn scale_invariance(scn: &Scenario) {
    let tree = scn.build_tree();
    let p = scn.p;
    let run = |machine: optipart_machine::MachineModel| {
        let mut e = Engine::new(
            p,
            optipart_machine::PerfModel::new(machine, scn.app.model()),
        )
        .with_tracing();
        let out = optipart(
            &mut e,
            distribute_tree(&tree, p),
            OptiPartOptions {
                curve: scn.curve,
                max_split_per_round: scn.split_budget,
                ..Default::default()
            },
        );
        let attrib = e.model_attribution();
        (out, e.makespan(), attrib)
    };
    let (base, base_makespan, base_attrib) = run(scn.machine.clone());
    for c in SCALE_FACTORS {
        let (scaled, makespan, attrib) = run(scn.machine.scaled(c));
        tk_assert!(
            scn,
            scaled.splitters == base.splitters,
            "×{c}: machine rescaling changed the splitters"
        );
        tk_assert_eq!(
            scn,
            scaled.report.counts,
            base.report.counts,
            "×{c}: machine rescaling changed the partition counts"
        );
        let rel = |a: f64, b: f64| (a - b).abs() <= 1e-12 * b.abs().max(f64::MIN_POSITIVE);
        tk_assert!(
            scn,
            rel(scaled.report.predicted_tp, c * base.report.predicted_tp),
            "×{c}: predicted_tp {} is not exactly {} × {}",
            scaled.report.predicted_tp,
            c,
            base.report.predicted_tp
        );
        tk_assert!(
            scn,
            rel(makespan, c * base_makespan),
            "×{c}: makespan {makespan} is not {c} × {base_makespan}"
        );
        tk_assert_eq!(
            scn,
            attrib.phases.len(),
            base_attrib.phases.len(),
            "×{c}: attribution phase sets diverge"
        );
        for (a, b) in attrib.phases.iter().zip(&base_attrib.phases) {
            tk_assert_eq!(
                scn,
                &a.phase,
                &b.phase,
                "×{c}: attribution phase order diverges"
            );
            tk_assert_eq!(
                scn,
                a.wmax_bytes,
                b.wmax_bytes,
                "×{c}: phase {} Wmax bytes changed under rescaling",
                a.phase
            );
            tk_assert_eq!(
                scn,
                a.cmax_bytes,
                b.cmax_bytes,
                "×{c}: phase {} Cmax bytes changed under rescaling",
                a.phase
            );
            tk_assert!(
                scn,
                rel(a.measured_s, c * b.measured_s),
                "×{c}: phase {} measured time {} is not {c} × {}",
                a.phase,
                a.measured_s,
                b.measured_s
            );
            tk_assert!(
                scn,
                rel(a.predicted_compute_s, c * b.predicted_compute_s),
                "×{c}: phase {} predicted compute does not scale exactly",
                a.phase
            );
        }
    }
}
