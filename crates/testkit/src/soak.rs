//! The bounded fuzz/soak driver: generated scenarios through the full
//! engine + faults + checkpoint + trace stack, with shrinking and a
//! one-line replay on failure.
//!
//! `testkit soak --budget N --seed S` expands `N` seeds into scenarios and
//! runs every registered check on each. On the first failure the driver
//! greedily shrinks the scenario (drop faults, halve the mesh, remove
//! ranks) while the same check still fails, then reports the *shrunken*
//! scenario's replay command — which encodes only the overridden fields,
//! so it stays one line.

use crate::metamorphic::PROPERTIES;
use crate::oracles::{assert_solutions_match, ORACLES};
use crate::scenario::{ElemFamily, HierKind, NamedCheck, Scenario, Workload};
use crate::{tk_assert, tk_assert_eq};
use optipart_core::partition::{distribute_shuffled, treesort_partition};
use optipart_fem::{amr_simulation_ft, AmrConfig};
use optipart_mpisim::rng::mix;
use optipart_mpisim::{CheckpointPolicy, Engine, FaultPlan};
use optipart_trace::fnv1a;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Every check the soak driver runs, in order: the differential oracles,
/// the metamorphic properties, plus the two whole-stack checks below.
pub const CHECKS: &[NamedCheck] = &[
    (
        "treesort-differential",
        crate::oracles::treesort_differential,
    ),
    ("optipart-bruteforce", crate::oracles::optipart_bruteforce),
    (
        "samplesort-equivalence",
        crate::oracles::samplesort_equivalence,
    ),
    ("fault-recovery", crate::oracles::fault_recovery),
    ("warm-vs-cold", crate::oracles::warm_vs_cold),
    ("serve-vs-library", crate::oracles::serve_vs_library),
    (
        "sparse-vs-dense-collectives",
        crate::oracles::sparse_vs_dense_collectives,
    ),
    ("hierarchy-flattening", crate::oracles::hierarchy_flattening),
    (
        "permutation-invariance",
        crate::metamorphic::permutation_invariance,
    ),
    (
        "duplication-robustness",
        crate::metamorphic::duplication_robustness,
    ),
    (
        "tolerance-monotonicity",
        crate::metamorphic::tolerance_monotonicity,
    ),
    ("scale-invariance", crate::metamorphic::scale_invariance),
    (
        "warm-state-fallback",
        crate::metamorphic::warm_state_fallback,
    ),
    (
        "rank-count-scale-invariance",
        crate::metamorphic::rank_count_scale_invariance,
    ),
    ("front-advection", crate::metamorphic::front_advection),
    ("stack", stack_check),
    ("trace-identity", trace_identity),
];

/// Looks a check up by name; `"all"` is handled by callers.
pub fn check_by_name(name: &str) -> Option<fn(&Scenario)> {
    CHECKS
        .iter()
        .chain(ORACLES.iter())
        .chain(PROPERTIES.iter())
        .find(|(n, _)| *n == name)
        .map(|&(_, f)| f)
}

/// Runs every registered check on one scenario, panicking (with the replay
/// command) on the first violation. This is the deterministic tier-1 entry
/// point — no `catch_unwind`, failures surface as ordinary test panics.
pub fn run_scenario(scn: &Scenario) {
    for (_, check) in CHECKS {
        check(scn);
    }
}

/// **Whole-stack check**: a faulted, checkpointed, traced AMR run must
/// (a) survive a mid-run rank kill and reproduce the fault-free solution,
/// (b) produce byte-identical traces when repeated, and (c) yield a
/// critical path that tiles `[0, makespan]` exactly — through detection,
/// restore and repartition events.
pub fn stack_check(scn: &Scenario) {
    let p = scn.p.clamp(2, 8);
    let cfg = AmrConfig {
        steps: 3,
        max_level: 4,
        matvecs_per_step: 2,
        curve: scn.curve,
        ..Default::default()
    };
    let run = |plan: Option<FaultPlan>| {
        let mut e = Engine::new(p, scn.perf()).with_tracing();
        if let Some(pl) = plan {
            e = e.with_faults(pl);
        }
        let rep = amr_simulation_ft(&mut e, &cfg, CheckpointPolicy::EveryStep);
        let cp = e.critical_path();
        let covered = cp.covered_s();
        tk_assert!(
            scn,
            (covered - cp.makespan_s).abs() <= 1e-9 * cp.makespan_s.max(1e-30),
            "critical path covers {covered} of makespan {}",
            cp.makespan_s
        );
        (e.trace_json(), e.makespan(), e.sync_points(), rep)
    };

    // Fault-free run, twice: determinism of the full stack.
    let (trace_a, makespan_a, syncs, clean) = run(None);
    let (trace_b, makespan_b, _, _) = run(None);
    tk_assert!(
        scn,
        trace_a == trace_b && makespan_a == makespan_b,
        "fault-free stack run is not deterministic"
    );
    tk_assert!(scn, clean.deaths.is_empty(), "clean run must see no deaths");

    // Faulted run: use the scenario's plan if it schedules deaths (corpus
    // files exercise death-during-recovery this way), else synthesize a
    // single mid-run kill.
    let plan = match &scn.faults {
        Some(f) if !f.death_schedule(p).is_empty() => f.clone(),
        _ => {
            let victim = (scn.seed % p as u64) as usize;
            FaultPlan::new(scn.seed).kill_rank(victim, syncs / 2)
        }
    };
    let expected_deaths = plan.death_schedule(p).len();
    let (trace_f1, mk_f1, _, faulted) = run(Some(plan.clone()));
    let (trace_f2, mk_f2, _, _) = run(Some(plan));
    tk_assert!(
        scn,
        trace_f1 == trace_f2 && mk_f1 == mk_f2,
        "faulted stack run is not deterministic"
    );
    tk_assert_eq!(
        scn,
        faulted.deaths.len(),
        expected_deaths,
        "scheduled kills must all fire"
    );
    tk_assert_eq!(
        scn,
        faulted.final_p,
        p - expected_deaths,
        "survivor count after kills"
    );
    assert_solutions_match(scn, "faulted AMR", &clean.solution, &faulted.solution);
}

/// **Trace byte-identity check**: two runs of the same seeded partition
/// with tracing on must serialise to byte-identical Chrome exports (and
/// hence equal [`fnv1a`] digests) — the regression class PR 2 guards.
pub fn trace_identity(scn: &Scenario) {
    let tree = scn.build_tree();
    let run = || {
        let mut e = scn.engine_faulted().with_tracing();
        let out = treesort_partition(
            &mut e,
            distribute_shuffled(&tree, scn.p, scn.shuffle_seed(8)),
            scn.opts(),
        );
        (e.trace_json(), out.splitters)
    };
    let (ja, sa) = run();
    let (jb, sb) = run();
    tk_assert!(scn, sa == sb, "splitters diverge across identical runs");
    tk_assert!(
        scn,
        ja == jb && fnv1a(ja.as_bytes()) == fnv1a(jb.as_bytes()),
        "trace bytes diverge across identical runs"
    );
}

/// One shrunken failure, ready to report.
#[derive(Clone, Debug)]
pub struct SoakFailure {
    /// Name of the failing check.
    pub check: String,
    /// The panic message of the original failure.
    pub message: String,
    /// The shrunken scenario (== the original if no shrink helped).
    pub scenario: Scenario,
    /// One-line replay command for the shrunken scenario.
    pub replay: String,
}

/// Outcome of a soak run.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Scenarios fully checked (the failing one, if any, excluded).
    pub passed: usize,
    /// The first failure, shrunken — `None` on a clean run.
    pub failure: Option<SoakFailure>,
}

/// Runs `check` on `scn`, catching the panic and returning its message.
fn try_check(check: fn(&Scenario), scn: &Scenario) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| check(scn))) {
        Ok(()) => Ok(()),
        Err(payload) => Err(payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "<non-string panic payload>".into())),
    }
}

/// Greedy shrink: repeatedly apply the first simplification under which
/// `check` still fails — drop faults, halve the mesh, remove ranks, clear
/// the split budget, flatten the machine hierarchy, fall back to hex
/// elements and a static workload — until none helps.
pub fn shrink(check: fn(&Scenario), scn: &Scenario) -> Scenario {
    let mut cur = scn.clone();
    loop {
        let mut candidates: Vec<Scenario> = Vec::new();
        if cur.faults.is_some() {
            let mut c = cur.clone();
            c.faults = None;
            candidates.push(c);
        }
        if cur.n > 8 {
            let mut c = cur.clone();
            c.n /= 2;
            candidates.push(c);
        }
        if cur.p > 2 {
            let mut c = cur.clone();
            c.p = (cur.p / 2).max(2);
            candidates.push(c);
        }
        if cur.split_budget.is_some() {
            let mut c = cur.clone();
            c.split_budget = None;
            candidates.push(c);
        }
        if cur.hier != HierKind::None {
            let mut c = cur.clone();
            c.hier = HierKind::None;
            candidates.push(c);
        }
        if cur.family != ElemFamily::Hex {
            let mut c = cur.clone();
            c.family = ElemFamily::Hex;
            candidates.push(c);
        }
        if cur.workload != Workload::Static {
            let mut c = cur.clone();
            c.workload = Workload::Static;
            candidates.push(c);
        }
        match candidates
            .into_iter()
            .find(|c| try_check(check, c).is_err())
        {
            Some(simpler) => cur = simpler,
            None => return cur,
        }
    }
}

/// Runs `budget` seeded scenarios (seed stream `mix(seed0 + i)`) through
/// every registered check; on the first failure, shrinks it and returns.
/// Panic output is suppressed while probing/shrinking (the driver is
/// single-threaded; the hook is restored before returning).
pub fn soak(budget: usize, seed0: u64) -> SoakReport {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut passed = 0;
    let mut failure = None;
    'outer: for i in 0..budget {
        let scn = Scenario::from_seed(mix(seed0.wrapping_add(i as u64)));
        for &(name, check) in CHECKS {
            if let Err(message) = try_check(check, &scn) {
                let shrunk = shrink(check, &scn);
                failure = Some(SoakFailure {
                    check: name.to_string(),
                    message,
                    replay: format!("{} --check {name}", shrunk.replay_cmd()),
                    scenario: shrunk,
                });
                break 'outer;
            }
        }
        passed += 1;
    }
    std::panic::set_hook(prev_hook);
    SoakReport { passed, failure }
}
