//! Regression corpus: seed files replayed in tier-1.
//!
//! A corpus file is a `key = value` text file (`#` comments) pinning one
//! historical failure class to its reproducing scenario:
//!
//! ```text
//! # splitter staging under a tight split budget
//! check = treesort-differential
//! seed = 0x51a9
//! split-budget = 8
//! ```
//!
//! `seed` is mandatory; every other key overrides the derived scenario
//! field, exactly like the `testkit replay` flags. `check` selects one
//! registered check (default `all`).

use crate::scenario::{parse_curve, AppKind, ElemFamily, HierKind, MeshShape, Scenario, Workload};
use crate::soak::{check_by_name, run_scenario};
use optipart_machine::MachineModel;
use optipart_mpisim::FaultPlan;

/// A parsed corpus entry.
#[derive(Clone, Debug)]
pub struct CorpusCase {
    /// Check name (`"all"` runs the full registry).
    pub check: String,
    /// The scenario, overrides applied.
    pub scenario: Scenario,
}

/// Parses a corpus file's contents. Returns `Err` with a line-anchored
/// message on any unknown key or malformed value — a corpus file that
/// silently skips its overrides would pin nothing.
pub fn parse(contents: &str) -> Result<CorpusCase, String> {
    let mut seed: Option<u64> = None;
    let mut check = "all".to_string();
    let mut overrides: Vec<(String, String)> = Vec::new();
    for (ln, raw) in contents.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`, got `{line}`", ln + 1))?;
        let (key, value) = (key.trim(), value.trim());
        match key {
            "seed" => {
                let v = value.strip_prefix("0x").map_or_else(
                    || value.parse::<u64>().map_err(|e| e.to_string()),
                    |hex| u64::from_str_radix(hex, 16).map_err(|e| e.to_string()),
                );
                seed = Some(v.map_err(|e| format!("line {}: bad seed: {e}", ln + 1))?);
            }
            "check" => check = value.to_string(),
            _ => overrides.push((key.to_string(), value.to_string())),
        }
    }
    let seed = seed.ok_or("corpus file has no `seed` key")?;
    let mut scenario = Scenario::from_seed(seed);
    for (key, value) in &overrides {
        apply_override(&mut scenario, key, value)
            .map_err(|e| format!("override `{key} = {value}`: {e}"))?;
    }
    if check != "all" && check_by_name(&check).is_none() {
        return Err(format!("unknown check `{check}`"));
    }
    Ok(CorpusCase { check, scenario })
}

/// Applies one field override (shared with the `testkit replay` CLI).
pub fn apply_override(scn: &mut Scenario, key: &str, value: &str) -> Result<(), String> {
    match key {
        "shape" => scn.shape = MeshShape::parse(value).ok_or("unknown shape")?,
        "n" => scn.n = value.parse().map_err(|_| "bad integer")?,
        "p" => scn.p = value.parse().map_err(|_| "bad integer")?,
        "curve" => scn.curve = parse_curve(value).ok_or("unknown curve")?,
        "tol" => scn.tolerance = value.parse().map_err(|_| "bad float")?,
        "split-budget" => {
            scn.split_budget = if value == "none" {
                None
            } else {
                Some(value.parse().map_err(|_| "bad integer")?)
            }
        }
        "machine" => scn.machine = MachineModel::by_name(value).ok_or("unknown machine preset")?,
        "app" => scn.app = AppKind::parse(value).ok_or("unknown app")?,
        "faults" => {
            scn.faults = Some(
                value
                    .parse::<FaultPlan>()
                    .map_err(|e| format!("bad fault spec: {e}"))?,
            )
        }
        "no-faults" => scn.faults = None,
        "hier" => scn.hier = HierKind::parse(value).ok_or("unknown hierarchy kind")?,
        "family" => scn.family = ElemFamily::parse(value).ok_or("unknown element family")?,
        "workload" => scn.workload = Workload::parse(value).ok_or("unknown workload")?,
        _ => return Err("unknown key".into()),
    }
    Ok(())
}

/// Replays one parsed corpus case, panicking (with the replay command) on
/// any violation.
pub fn replay(case: &CorpusCase) {
    if case.check == "all" {
        run_scenario(&case.scenario);
    } else {
        let check = check_by_name(&case.check).expect("validated by parse()");
        check(&case.scenario);
    }
}
