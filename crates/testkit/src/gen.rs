//! Shared seeded generators — the single home of the helpers the per-crate
//! property suites used to carry as private copies.
//!
//! Everything here is deterministic in its arguments; no global state, no
//! host entropy. The `proptest` `Strategy` wrappers live in
//! `crate::strategies` behind the `proptest` feature.

use optipart_machine::{AppModel, MachineModel, PerfModel};
use optipart_mpisim::Engine;
use optipart_octree::balance::balance21;
use optipart_octree::{sample_points, tree_from_points, Distribution, LinearTree};
use optipart_sfc::Curve;

/// An engine on an arbitrary machine with the Laplacian matvec app model.
pub fn engine_on(machine: MachineModel, p: usize) -> Engine {
    Engine::new(p, PerfModel::new(machine, AppModel::laplacian_matvec()))
}

/// The engine the `mpisim` property suite uses (Titan).
pub fn engine_titan(p: usize) -> Engine {
    engine_on(MachineModel::titan(), p)
}

/// The engine the `core`/`fem` property suites use (CloudLab Wisconsin).
pub fn engine_wisconsin(p: usize) -> Engine {
    engine_on(MachineModel::cloudlab_wisconsin(), p)
}

/// A normally-distributed adaptive octree capped at `max_level` — the
/// generic mesh generator behind the property suites.
pub fn normal_tree<const D: usize>(
    seed: u64,
    n: usize,
    max_level: u8,
    curve: Curve,
) -> LinearTree<D> {
    let pts = sample_points::<D>(Distribution::Normal, n, seed);
    tree_from_points(&pts, 1, max_level, curve)
}

/// The `core` suite's mesh: normal distribution, refinement cap 14.
pub fn tree(seed: u64, n: usize, curve: Curve) -> LinearTree<3> {
    normal_tree::<3>(seed, n, 14, curve)
}

/// The `fem` suite's mesh: 2:1-balanced (the class on which ghost discovery
/// is complete and the stencil partition-independent), cap 8. Generic in
/// `D` for the quadtree instantiation.
pub fn balanced_tree<const D: usize>(seed: u64, n: usize, curve: Curve) -> LinearTree<D> {
    balance21(&normal_tree::<D>(seed, n, 8, curve))
}
