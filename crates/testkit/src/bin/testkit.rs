//! The testkit CLI: bounded soak runs, single-seed replay, corpus replay.
//!
//! ```text
//! testkit soak --budget 200 --seed 1 [--repro-file target/testkit-repro.txt]
//! testkit replay --seed 0x51a9 [--check stack] [field overrides…]
//! testkit corpus tests/corpus
//! ```
//!
//! `soak` exits non-zero on failure after printing the shrunken scenario's
//! one-line replay command (and writing it to the repro file for CI
//! artifact upload). `replay` accepts exactly the flags `replay_cmd()`
//! emits, so any failure message is copy-pastable.

use optipart_testkit::corpus;
use optipart_testkit::scenario::Scenario;
use optipart_testkit::soak::{check_by_name, run_scenario, soak, CHECKS};

fn usage() -> ! {
    eprintln!(
        "usage:\n  testkit soak --budget <n> [--seed <s>] [--repro-file <path>]\n  \
         testkit replay --seed <s> [--check <name>] [--shape|--n|--p|--curve|--tol|\
         --split-budget|--machine|--app|--faults|--hier|--family|--workload <v>] [--no-faults]\n  \
         testkit corpus <dir-or-file>…\n\nchecks: all {}",
        CHECKS.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(" ")
    );
    std::process::exit(2);
}

fn parse_seed(s: &str) -> u64 {
    s.strip_prefix("0x")
        .map_or_else(|| s.parse(), |h| u64::from_str_radix(h, 16))
        .unwrap_or_else(|_| {
            eprintln!("bad seed `{s}`");
            std::process::exit(2);
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("soak") => cmd_soak(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..]),
        _ => usage(),
    }
}

fn cmd_soak(args: &[String]) {
    let mut budget = 100usize;
    let mut seed = 1u64;
    let mut repro_file = "target/testkit-repro.txt".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--budget" => {
                budget = it
                    .next()
                    .unwrap_or_else(|| usage())
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--seed" => seed = parse_seed(it.next().unwrap_or_else(|| usage())),
            "--repro-file" => repro_file = it.next().unwrap_or_else(|| usage()).clone(),
            _ => usage(),
        }
    }
    println!(
        "testkit soak: budget {budget}, seed {seed}, {} checks",
        CHECKS.len()
    );
    let report = soak(budget, seed);
    match report.failure {
        None => println!(
            "soak OK: {} scenarios × {} checks",
            report.passed,
            CHECKS.len()
        ),
        Some(f) => {
            eprintln!(
                "soak FAILED after {} clean scenarios\n  check:    {}\n  scenario: {}\n  {}\n  replay:   {}",
                report.passed,
                f.check,
                f.scenario,
                f.message.replace('\n', "\n  "),
                f.replay
            );
            if let Some(dir) = std::path::Path::new(&repro_file).parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let _ = std::fs::write(&repro_file, format!("{}\n", f.replay));
            eprintln!("  repro written to {repro_file}");
            std::process::exit(1);
        }
    }
}

fn cmd_replay(args: &[String]) {
    let mut seed: Option<u64> = None;
    let mut check = "all".to_string();
    let mut overrides: Vec<(String, String)> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let flag = a.strip_prefix("--").unwrap_or_else(|| usage());
        match flag {
            "seed" => seed = Some(parse_seed(it.next().unwrap_or_else(|| usage()))),
            "check" => check = it.next().unwrap_or_else(|| usage()).clone(),
            "no-faults" => overrides.push(("no-faults".into(), String::new())),
            "shape" | "n" | "p" | "curve" | "tol" | "split-budget" | "machine" | "app"
            | "faults" | "hier" | "family" | "workload" => overrides.push((
                flag.to_string(),
                it.next().unwrap_or_else(|| usage()).clone(),
            )),
            _ => usage(),
        }
    }
    let Some(seed) = seed else { usage() };
    let mut scn = Scenario::from_seed(seed);
    for (key, value) in &overrides {
        if let Err(e) = corpus::apply_override(&mut scn, key, value) {
            eprintln!("--{key} {value}: {e}");
            std::process::exit(2);
        }
    }
    println!("replaying: {scn}");
    if check == "all" {
        run_scenario(&scn);
    } else {
        let Some(f) = check_by_name(&check) else {
            eprintln!("unknown check `{check}`");
            usage();
        };
        f(&scn);
    }
    println!("replay OK ({check})");
}

fn cmd_corpus(args: &[String]) {
    if args.is_empty() {
        usage();
    }
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    for a in args {
        let path = std::path::Path::new(a);
        if path.is_dir() {
            let mut entries: Vec<_> = std::fs::read_dir(path)
                .unwrap_or_else(|e| {
                    eprintln!("{a}: {e}");
                    std::process::exit(2);
                })
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "seed"))
                .collect();
            entries.sort();
            files.extend(entries);
        } else {
            files.push(path.to_path_buf());
        }
    }
    for file in &files {
        let contents = std::fs::read_to_string(file).unwrap_or_else(|e| {
            eprintln!("{}: {e}", file.display());
            std::process::exit(2);
        });
        let case = corpus::parse(&contents).unwrap_or_else(|e| {
            eprintln!("{}: {e}", file.display());
            std::process::exit(2);
        });
        println!(
            "corpus {}: {} ({})",
            file.display(),
            case.scenario,
            case.check
        );
        corpus::replay(&case);
    }
    println!("corpus OK: {} case(s)", files.len());
}
