//! Energy substrate: node power model, activity traces, IPMI-style sampling.
//!
//! Stands in for the paper's §4.1 measurement apparatus: "we obtained
//! on-board IPMI sensor information and recorded every machine's
//! instantaneous power draw (in Watts) every second", later combined with
//! job timestamps into per-job Joule estimates. Here the "sensor" reads a
//! simulated piecewise-constant power function reconstructed from the BSP
//! engine's activity intervals; the same 1 Hz sampling and integration then
//! produce per-node and per-job energies (Figs. 7–9).
//!
//! The power model follows the paper's §3.3 argument: total energy is
//! strongly correlated with runtime (idle/base power × makespan), the
//! compute energy depends on total work (which partitioning does not change),
//! and the communication energy is proportional to the data moved — which
//! OptiPart minimises.
//!
//! When the machine carries a two-level [`Hierarchy`], bytes that stayed
//! on-node are charged at the (cheaper) intra-node NIC rate. The discount is
//! additive — `flat + (nic_intra − nic) · bytes_intra` — so a degenerate
//! hierarchy (intra == inter) is bit-identical to the flat model.

use crate::model::Hierarchy;

/// Power envelope of one node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodePower {
    /// Power drawn by an idle (but powered) node, Watts.
    pub idle_w: f64,
    /// Power drawn with all cores busy, Watts.
    pub peak_w: f64,
    /// Marginal NIC + switch energy per byte moved, Joules.
    pub nic_j_per_byte: f64,
}

impl NodePower {
    /// Dynamic power of one busy rank when the node hosts `ranks_per_node`.
    #[inline]
    pub fn dynamic_per_rank_w(&self, ranks_per_node: usize) -> f64 {
        (self.peak_w - self.idle_w) / ranks_per_node.max(1) as f64
    }
}

/// What a rank was doing during an interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActivityKind {
    /// Local computation: draws dynamic core power.
    Compute,
    /// Network transfer: draws (reduced) core power plus NIC energy per byte.
    Communication,
}

/// One activity interval of one rank, in simulated seconds.
#[derive(Clone, Copy, Debug)]
pub struct Interval {
    /// Owning rank.
    pub rank: usize,
    /// Start time (simulated seconds).
    pub t0: f64,
    /// End time.
    pub t1: f64,
    /// Activity class.
    pub kind: ActivityKind,
    /// Bytes moved (communication intervals only).
    pub bytes: u64,
    /// Of `bytes`, how many never left the node (both endpoints on the same
    /// node). Always `<= bytes`; only the hierarchical energy model reads it.
    pub bytes_intra: u64,
}

/// Full activity trace of a simulated job: every rank's busy intervals.
///
/// Gaps between a rank's intervals are idle/wait time — the rank still draws
/// its share of node idle power, which is how load imbalance shows up as
/// wasted energy.
#[derive(Clone, Debug, Default)]
pub struct PowerTrace {
    /// Busy intervals, in no particular order.
    pub intervals: Vec<Interval>,
    /// Job end (max rank clock), simulated seconds.
    pub makespan: f64,
}

impl PowerTrace {
    /// Records an interval.
    pub fn push(&mut self, iv: Interval) {
        debug_assert!(iv.t1 >= iv.t0);
        self.makespan = self.makespan.max(iv.t1);
        self.intervals.push(iv);
    }

    /// Instantaneous power of `node` at time `t` — what the simulated IPMI
    /// sensor reads.
    ///
    /// Communication intervals draw a fraction of dynamic power (the core is
    /// mostly stalled in the network stack) plus their NIC energy amortised
    /// over the interval.
    pub fn power_at(&self, node: usize, t: f64, power: &NodePower, ranks_per_node: usize) -> f64 {
        self.power_at_hier(node, t, power, None, ranks_per_node)
    }

    /// [`PowerTrace::power_at`] under an optional two-level machine
    /// hierarchy: on-node bytes amortise at the intra-node NIC rate.
    pub fn power_at_hier(
        &self,
        node: usize,
        t: f64,
        power: &NodePower,
        hierarchy: Option<&Hierarchy>,
        ranks_per_node: usize,
    ) -> f64 {
        if t > self.makespan {
            return 0.0; // job finished; node handed back
        }
        let dyn_w = power.dynamic_per_rank_w(ranks_per_node);
        let mut w = power.idle_w;
        for iv in &self.intervals {
            if iv.rank / ranks_per_node != node || t < iv.t0 || t >= iv.t1 {
                continue;
            }
            match iv.kind {
                ActivityKind::Compute => w += dyn_w,
                ActivityKind::Communication => {
                    w += COMM_CORE_FRACTION * dyn_w;
                    let dur = (iv.t1 - iv.t0).max(f64::EPSILON);
                    w += nic_j(power, hierarchy, iv.bytes, iv.bytes_intra) / dur;
                }
            }
        }
        w
    }

    /// Exact (closed-form) energy report, integrating the same power
    /// function analytically. The IPMI sampler converges to this as the
    /// sampling period shrinks.
    pub fn exact_energy(
        &self,
        power: &NodePower,
        ranks_per_node: usize,
        num_nodes: usize,
    ) -> EnergyReport {
        self.exact_energy_hier(power, None, ranks_per_node, num_nodes)
    }

    /// [`PowerTrace::exact_energy`] under an optional two-level machine
    /// hierarchy: the NIC Joules of each communication interval's on-node
    /// bytes are charged at the intra-node rate, matching
    /// [`crate::MachineModel::nic_j`] bit-for-bit.
    pub fn exact_energy_hier(
        &self,
        power: &NodePower,
        hierarchy: Option<&Hierarchy>,
        ranks_per_node: usize,
        num_nodes: usize,
    ) -> EnergyReport {
        let dyn_w = power.dynamic_per_rank_w(ranks_per_node);
        let mut per_node = vec![power.idle_w * self.makespan; num_nodes];
        let mut comm_j = 0.0;
        for iv in &self.intervals {
            let node = iv.rank / ranks_per_node;
            let dur = iv.t1 - iv.t0;
            let j = match iv.kind {
                ActivityKind::Compute => dyn_w * dur,
                ActivityKind::Communication => {
                    let j = COMM_CORE_FRACTION * dyn_w * dur
                        + nic_j(power, hierarchy, iv.bytes, iv.bytes_intra);
                    comm_j += j;
                    j
                }
            };
            per_node[node] += j;
        }
        let total: f64 = per_node.iter().sum();
        EnergyReport {
            per_node_j: per_node,
            total_j: total,
            comm_j,
            makespan_s: self.makespan,
        }
    }
}

/// NIC Joules for `bytes` moved of which `bytes_intra` stayed on-node, in the
/// additive-discount form shared with [`crate::MachineModel::nic_j`]: a
/// missing or degenerate hierarchy adds exactly `+0.0`.
#[inline]
fn nic_j(power: &NodePower, hierarchy: Option<&Hierarchy>, bytes: u64, bytes_intra: u64) -> f64 {
    let flat = bytes as f64 * power.nic_j_per_byte;
    match hierarchy {
        Some(h) => flat + (h.nic_intra_j_per_byte - power.nic_j_per_byte) * bytes_intra as f64,
        None => flat,
    }
}

/// Fraction of a core's dynamic power drawn while blocked in communication.
///
/// Public so that cost engines accumulating energy incrementally stay
/// consistent with [`PowerTrace::exact_energy`].
pub const COMM_CORE_FRACTION: f64 = 0.3;

/// The simulated on-board power sensor of §4.1.
#[derive(Clone, Copy, Debug)]
pub struct IpmiSampler {
    /// Sampling period in (simulated) seconds; the paper sampled at 1 Hz.
    pub period_s: f64,
}

impl Default for IpmiSampler {
    fn default() -> Self {
        IpmiSampler { period_s: 1.0 }
    }
}

impl IpmiSampler {
    /// Samples the trace like the paper's collector — one reading per node
    /// per period — and integrates (left Riemann sum, matching "instantaneous
    /// power draw every second" × 1 s) into an [`EnergyReport`].
    ///
    /// As the paper notes (§4.1, citing Hackenberg et al.), IPMI samples are
    /// accurate as long as load variation is slow relative to the sampling
    /// rate; tests verify convergence to [`PowerTrace::exact_energy`].
    pub fn measure(
        &self,
        trace: &PowerTrace,
        power: &NodePower,
        ranks_per_node: usize,
        num_nodes: usize,
    ) -> EnergyReport {
        self.measure_hier(trace, power, None, ranks_per_node, num_nodes)
    }

    /// [`IpmiSampler::measure`] under an optional two-level machine
    /// hierarchy, consistent with [`PowerTrace::exact_energy_hier`].
    pub fn measure_hier(
        &self,
        trace: &PowerTrace,
        power: &NodePower,
        hierarchy: Option<&Hierarchy>,
        ranks_per_node: usize,
        num_nodes: usize,
    ) -> EnergyReport {
        let mut per_node = vec![0.0; num_nodes];
        let mut t = 0.0;
        while t < trace.makespan {
            let dt = self.period_s.min(trace.makespan - t);
            for (node, e) in per_node.iter_mut().enumerate() {
                *e += trace.power_at_hier(node, t, power, hierarchy, ranks_per_node) * dt;
            }
            t += self.period_s;
        }
        // The sampler cannot attribute Joules to phases; reuse the exact
        // split for the comm share (the paper post-processes job phase
        // timestamps the same way).
        let exact = trace.exact_energy_hier(power, hierarchy, ranks_per_node, num_nodes);
        let total: f64 = per_node.iter().sum();
        EnergyReport {
            per_node_j: per_node,
            total_j: total,
            comm_j: exact.comm_j,
            makespan_s: trace.makespan,
        }
    }
}

/// Per-job energy estimate (§4.1: "per-job energy consumption estimates (in
/// Joules) ... In addition to the total job consumption, we estimated the
/// amount of energy consumed during the communication phase").
#[derive(Clone, Debug)]
pub struct EnergyReport {
    /// Energy per node, Joules (Fig. 9's per-node bars).
    pub per_node_j: Vec<f64>,
    /// Whole-job energy, Joules.
    pub total_j: f64,
    /// Energy attributed to communication, Joules.
    pub comm_j: f64,
    /// Job duration, simulated seconds.
    pub makespan_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn power() -> NodePower {
        NodePower {
            idle_w: 100.0,
            peak_w: 300.0,
            nic_j_per_byte: 1e-9,
        }
    }

    fn simple_trace() -> PowerTrace {
        let mut t = PowerTrace::default();
        // Two ranks on one node (ranks_per_node = 2): rank 0 computes for
        // 10 s, rank 1 for 4 s then waits.
        t.push(Interval {
            rank: 0,
            t0: 0.0,
            t1: 10.0,
            kind: ActivityKind::Compute,
            bytes: 0,
            bytes_intra: 0,
        });
        t.push(Interval {
            rank: 1,
            t0: 0.0,
            t1: 4.0,
            kind: ActivityKind::Compute,
            bytes: 0,
            bytes_intra: 0,
        });
        t
    }

    #[test]
    fn exact_energy_accounts_idle_and_dynamic() {
        let t = simple_trace();
        let rep = t.exact_energy(&power(), 2, 1);
        // idle 100 W × 10 s + 100 W/rank × (10 + 4) s = 1000 + 1400.
        assert!((rep.total_j - 2400.0).abs() < 1e-9, "total {}", rep.total_j);
        assert_eq!(rep.comm_j, 0.0);
        assert_eq!(rep.makespan_s, 10.0);
    }

    #[test]
    fn imbalance_wastes_energy() {
        // Balanced: both ranks compute 7 s (same total work, makespan 7).
        let mut balanced = PowerTrace::default();
        balanced.push(Interval {
            rank: 0,
            t0: 0.0,
            t1: 7.0,
            kind: ActivityKind::Compute,
            bytes: 0,
            bytes_intra: 0,
        });
        balanced.push(Interval {
            rank: 1,
            t0: 0.0,
            t1: 7.0,
            kind: ActivityKind::Compute,
            bytes: 0,
            bytes_intra: 0,
        });
        let eb = balanced.exact_energy(&power(), 2, 1).total_j;
        let ei = simple_trace().exact_energy(&power(), 2, 1).total_j;
        assert!(eb < ei, "balanced {eb} must beat imbalanced {ei}");
    }

    #[test]
    fn communication_energy_proportional_to_bytes() {
        let p = power();
        let mk = |bytes| {
            let mut t = PowerTrace::default();
            t.push(Interval {
                rank: 0,
                t0: 0.0,
                t1: 1.0,
                kind: ActivityKind::Communication,
                bytes,
                bytes_intra: 0,
            });
            t.exact_energy(&p, 1, 1)
        };
        let small = mk(1_000_000);
        let large = mk(1_000_000_000);
        assert!(large.comm_j > small.comm_j);
        let delta = large.comm_j - small.comm_j;
        assert!((delta - 999_000_000.0 * 1e-9).abs() < 1e-6);
    }

    #[test]
    fn ipmi_sampler_converges_to_exact() {
        let t = simple_trace();
        let p = power();
        let exact = t.exact_energy(&p, 2, 1).total_j;
        let coarse = IpmiSampler { period_s: 1.0 }.measure(&t, &p, 2, 1).total_j;
        let fine = IpmiSampler { period_s: 0.01 }.measure(&t, &p, 2, 1).total_j;
        // Piecewise-constant trace with integer breakpoints: 1 Hz is exact
        // (up to one sample landing on a breakpoint under float drift).
        assert!((coarse - exact).abs() < 1e-6);
        // Finer sampling stays within one sample period of dynamic power.
        assert!((fine - exact).abs() <= 0.01 * 300.0);
    }

    #[test]
    fn ipmi_sampling_error_bounded_for_subsecond_phases() {
        // A 0.5 s compute burst: 1 Hz sampling over- or under-counts, but
        // stays within one period × dynamic power.
        let mut t = PowerTrace::default();
        t.push(Interval {
            rank: 0,
            t0: 0.2,
            t1: 0.7,
            kind: ActivityKind::Compute,
            bytes: 0,
            bytes_intra: 0,
        });
        let p = power();
        let exact = t.exact_energy(&p, 1, 1).total_j;
        let sampled = IpmiSampler { period_s: 1.0 }.measure(&t, &p, 1, 1).total_j;
        assert!((sampled - exact).abs() <= (p.peak_w - p.idle_w) * 1.0 + 1e-9);
    }

    #[test]
    fn power_at_respects_node_boundaries() {
        let mut t = PowerTrace::default();
        t.push(Interval {
            rank: 3,
            t0: 0.0,
            t1: 5.0,
            kind: ActivityKind::Compute,
            bytes: 0,
            bytes_intra: 0,
        });
        let p = power();
        // ranks_per_node = 2 → rank 3 is on node 1.
        assert_eq!(t.power_at(0, 1.0, &p, 2), p.idle_w);
        assert!(t.power_at(1, 1.0, &p, 2) > p.idle_w);
    }

    #[test]
    fn per_node_vector_length_matches_nodes() {
        let t = simple_trace();
        let rep = t.exact_energy(&power(), 1, 2);
        assert_eq!(rep.per_node_j.len(), 2);
    }
}
