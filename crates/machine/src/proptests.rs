//! Property-based tests for the machine and energy models.
//!
//! Strategies come from `optipart_testkit::strategies`; all types are the
//! testkit re-exports (`optipart_testkit::machine::…`), never `crate::…`
//! paths — the unit-test target is a separate compilation of this crate,
//! so mixing the two would break type identity.

use optipart_testkit::machine::energy::{ActivityKind, Interval, IpmiSampler, PowerTrace};
use optipart_testkit::machine::{AppModel, MachineModel, PerfModel};
use optipart_testkit::strategies::node_power as power;
use proptest::prelude::*;

proptest! {
    /// Eq. (3) is linear: predict(a+b) = predict(a) + predict(b) per term.
    #[test]
    fn predict_is_linear(w1 in 0u64..1_000_000, w2 in 0u64..1_000_000,
                         c1 in 0u64..1_000_000, c2 in 0u64..1_000_000) {
        let m = PerfModel::new(MachineModel::titan(), AppModel::laplacian_matvec());
        let lhs = m.predict(w1 + w2, c1 + c2);
        let rhs = m.predict(w1, c1) + m.predict(w2, c2);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs()));
    }

    /// Staged TreeSort time (Eq. 2) is monotone in k and never beats k = 1's
    /// latency-only floor the wrong way.
    #[test]
    fn staged_time_monotone_in_k(grain in 1u64..10_000_000, p_exp in 1u32..14) {
        let p = 1usize << p_exp;
        let m = PerfModel::new(MachineModel::stampede(), AppModel::laplacian_matvec());
        let mut prev = f64::NEG_INFINITY;
        for k in [1usize, 16, 256, p.min(4096)] {
            if k > p { break; }
            let t = m.treesort_time_staged(grain, p, k);
            prop_assert!(t >= prev, "k={k}: {t} < {prev}");
            prev = t;
        }
    }

    /// Exact energy is invariant under interval splitting: one interval of
    /// length L equals two back-to-back halves.
    #[test]
    fn energy_interval_splitting(dur in 0.1f64..100.0, p in power(),
                                 bytes in 0u64..1_000_000_000) {
        let whole = {
            let mut t = PowerTrace::default();
            t.push(Interval { rank: 0, t0: 0.0, t1: dur, kind: ActivityKind::Communication, bytes, bytes_intra: 0 });
            t.exact_energy(&p, 1, 1).total_j
        };
        let halves = {
            let mut t = PowerTrace::default();
            t.push(Interval { rank: 0, t0: 0.0, t1: dur / 2.0, kind: ActivityKind::Communication, bytes: bytes / 2, bytes_intra: 0 });
            t.push(Interval { rank: 0, t0: dur / 2.0, t1: dur, kind: ActivityKind::Communication, bytes: bytes - bytes / 2, bytes_intra: 0 });
            t.exact_energy(&p, 1, 1).total_j
        };
        prop_assert!((whole - halves).abs() <= 1e-9 * (1.0 + whole.abs()));
    }

    /// The IPMI sampler never misses more than one sample period of dynamic
    /// power per interval.
    #[test]
    fn sampler_error_bounded(dur in 0.05f64..20.0, start in 0.0f64..5.0, p in power()) {
        let mut t = PowerTrace::default();
        t.push(Interval { rank: 0, t0: start, t1: start + dur, kind: ActivityKind::Compute, bytes: 0, bytes_intra: 0 });
        let exact = t.exact_energy(&p, 1, 1).total_j;
        let sampled = IpmiSampler { period_s: 1.0 }.measure(&t, &p, 1, 1).total_j;
        let bound = (p.peak_w - p.idle_w) * 1.0 + p.idle_w * 1.0 + 1e-6;
        prop_assert!((sampled - exact).abs() <= bound,
                     "err {} > bound {bound}", (sampled - exact).abs());
    }

    /// Node mapping is a partition of ranks: every rank maps to exactly one
    /// node and nodes_for covers it.
    #[test]
    fn node_mapping_partitions_ranks(p in 1usize..5000) {
        for m in MachineModel::presets() {
            let nodes = m.nodes_for(p);
            for r in (0..p).step_by(7) {
                let n = m.node_of(r);
                prop_assert!(n < nodes, "{}: rank {r} -> node {n} >= {nodes}", m.name);
            }
            prop_assert!(nodes * m.ranks_per_node >= p);
            prop_assert!((nodes - 1) * m.ranks_per_node < p);
        }
    }
}
