//! The performance model of §3.3 (Eq. 3) and the TreeSort cost models of
//! §3.1 (Eqs. 1–2).

use crate::model::{AppModel, MachineModel};

/// Performance model binding a machine to an application.
///
/// This is the object OptiPart (Algorithm 3) consults: given a candidate
/// partition's maximum work `Wmax` and maximum communication `Cmax`, it
/// predicts the per-iteration runtime of the subsequent computation.
#[derive(Clone, Debug)]
pub struct PerfModel {
    /// Target machine.
    pub machine: MachineModel,
    /// Target application kernel.
    pub app: AppModel,
}

impl PerfModel {
    /// Creates a model for an application on a machine.
    pub fn new(machine: MachineModel, app: AppModel) -> Self {
        PerfModel { machine, app }
    }

    /// Eq. (3): `Tp = α · tc · Wmax + tw · Cmax`.
    ///
    /// `wmax` is the maximum number of work units (elements) on any rank;
    /// `cmax` the maximum number of elements any rank exchanges. Both are
    /// scaled to bytes by the application's element size.
    #[inline]
    pub fn predict(&self, wmax: u64, cmax: u64) -> f64 {
        self.app.alpha * self.machine.tc * (wmax as f64 * self.app.elem_bytes)
            + self.machine.tw * (cmax as f64 * self.app.elem_bytes)
    }

    /// Hierarchy-aware Eq. (3): the flat prediction plus the intra-node
    /// discount on the `cmax_intra ≤ cmax` exchanged elements that never
    /// leave the bottleneck rank's node,
    /// `Tp = α·tc·Wmax·b + tw·Cmax·b + (tw_intra − tw)·Cmax_intra·b`.
    ///
    /// Written in additive-discount form so a machine with no hierarchy, or
    /// a degenerate one (intra == inter), predicts bit-identically to
    /// [`PerfModel::predict`] — the flattening contract every differential
    /// oracle leans on.
    #[inline]
    pub fn predict_hier(&self, wmax: u64, cmax: u64, cmax_intra: u64) -> f64 {
        debug_assert!(cmax_intra <= cmax, "intra exchange exceeds total");
        let flat = self.predict(wmax, cmax);
        match &self.machine.hierarchy {
            Some(h) => {
                flat + (h.tw_intra - self.machine.tw) * (cmax_intra as f64 * self.app.elem_bytes)
            }
            None => flat,
        }
    }

    /// Compute-only part of Eq. (3) — used by the engine to charge local
    /// work phases.
    #[inline]
    pub fn compute_time(&self, work_units: u64) -> f64 {
        self.app.alpha * self.machine.tc * (work_units as f64 * self.app.elem_bytes)
    }

    /// Eq. (1): expected runtime of the (unstaged) distributed TreeSort,
    /// `Tp = tc·N/p + (ts + tw·p)·log p + tw·N/p`.
    ///
    /// `n_local` is the grain `N/p` in elements.
    pub fn treesort_time(&self, n_local: u64, p: usize) -> f64 {
        self.treesort_time_staged(n_local, p, p)
    }

    /// Eq. (2): the staged variant with `k ≤ p` splitters,
    /// `Tp = tc·N/p + (ts + tw·k)·log p + tw·N/p`.
    pub fn treesort_time_staged(&self, n_local: u64, p: usize, k: usize) -> f64 {
        assert!(k >= 1 && k <= p.max(1));
        let bytes_local = n_local as f64 * self.app.elem_bytes;
        let logp = (p.max(2) as f64).log2();
        self.machine.tc * bytes_local
            + (self.machine.ts + self.machine.tw * k as f64 * self.app.elem_bytes) * logp
            + self.machine.tw * bytes_local
    }

    /// §3.2's break-even analysis: the runtime delta of accepting
    /// `extra_work` more units on the bottleneck rank in exchange for
    /// `saved_comm` fewer exchanged units. Negative means the trade wins.
    pub fn tradeoff(&self, extra_work: u64, saved_comm: u64) -> f64 {
        self.compute_time(extra_work) - self.machine.tw * (saved_comm as f64 * self.app.elem_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AppModel, MachineModel};

    fn model() -> PerfModel {
        PerfModel::new(
            MachineModel::cloudlab_wisconsin(),
            AppModel::laplacian_matvec(),
        )
    }

    #[test]
    fn predict_is_monotone_in_both_arguments() {
        let m = model();
        let base = m.predict(1000, 100);
        assert!(m.predict(2000, 100) > base);
        assert!(m.predict(1000, 200) > base);
        assert_eq!(m.predict(0, 0), 0.0);
    }

    #[test]
    fn predict_hier_matches_flat_without_or_with_degenerate_hierarchy() {
        let flat = model();
        let degen = PerfModel::new(
            MachineModel::cloudlab_wisconsin().hierarchical_flat(),
            AppModel::laplacian_matvec(),
        );
        for (w, c, ci) in [(1000u64, 300u64, 0u64), (1000, 300, 300), (7, 5, 2)] {
            let reference = flat.predict(w, c);
            assert_eq!(flat.predict_hier(w, c, ci).to_bits(), reference.to_bits());
            assert_eq!(degen.predict_hier(w, c, ci).to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn predict_hier_rewards_on_node_exchange() {
        let m = PerfModel::new(
            MachineModel::cloudlab_wisconsin().hierarchical_smp(),
            AppModel::laplacian_matvec(),
        );
        let none_on_node = m.predict_hier(1000, 300, 0);
        let all_on_node = m.predict_hier(1000, 300, 300);
        assert!(all_on_node < none_on_node);
        assert_eq!(none_on_node.to_bits(), m.predict(1000, 300).to_bits());
    }

    #[test]
    fn comm_dominates_on_ethernet() {
        // On Wisconsin-8 (tw >> tc), one exchanged element must cost more
        // than one computed element — the premise of flexible partitioning.
        let m = model();
        let one_work = m.predict(1, 0);
        let one_comm = m.predict(0, 1);
        assert!(
            one_comm > one_work,
            "comm {one_comm:e} vs work {one_work:e}"
        );
    }

    #[test]
    fn titan_less_comm_bound_than_cloudlab() {
        let app = AppModel::laplacian_matvec();
        let titan = PerfModel::new(MachineModel::titan(), app);
        let wisc = PerfModel::new(MachineModel::cloudlab_wisconsin(), app);
        let ratio = |m: &PerfModel| m.predict(0, 1) / m.predict(1, 0);
        assert!(ratio(&wisc) > ratio(&titan));
    }

    #[test]
    fn staged_treesort_cheaper_for_small_k() {
        // Eq. (2) vs Eq. (1): limiting the splitters reduces the reduction
        // cost term.
        let m = PerfModel::new(MachineModel::titan(), AppModel::laplacian_matvec());
        let full = m.treesort_time(1_000_000, 4096);
        let staged = m.treesort_time_staged(1_000_000, 4096, 64);
        assert!(staged < full);
    }

    #[test]
    fn treesort_time_grows_with_grain_and_p() {
        let m = PerfModel::new(MachineModel::titan(), AppModel::laplacian_matvec());
        assert!(m.treesort_time(2_000_000, 64) > m.treesort_time(1_000_000, 64));
        assert!(m.treesort_time(1_000_000, 4096) > m.treesort_time(1_000_000, 64));
    }

    #[test]
    fn tradeoff_sign() {
        // §3.2: "an increase of 20 units of work resulting in a reduction of
        // 5 units of data-exchange, would still provide savings" when comm is
        // 10x work cost. Reconstruct that contrived example.
        let machine = MachineModel::custom("contrived", 1.0, 0.0, 10.0, 1);
        let app = AppModel {
            alpha: 1.0,
            elem_bytes: 1.0,
        };
        let m = PerfModel::new(machine, app);
        // 5*10 - 20 = 30 units of savings.
        assert_eq!(m.tradeoff(20, 5), -30.0);
        // And the trade loses when savings are too small.
        assert!(m.tradeoff(200, 5) > 0.0);
    }

    #[test]
    #[should_panic]
    fn staged_k_larger_than_p_rejected() {
        let m = model();
        let _ = m.treesort_time_staged(100, 4, 8);
    }
}
