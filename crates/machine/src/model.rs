//! Machine and application parameter sets (Table 1 of the paper).

use crate::energy::NodePower;

/// Two-level network hierarchy: the cost of a byte that never leaves its
/// node (shared-memory transport, NUMA link or on-node switch) vs the flat
/// inter-node figures carried by [`MachineModel`] itself.
///
/// The flat `tc`/`ts`/`tw` of the machine remain the *inter-node* values;
/// a hierarchy only adds the cheaper intra-node figures. Every consumer is
/// written in additive-discount form — `flat_cost + (intra − inter) ·
/// intra_bytes` — so a *degenerate* hierarchy (intra == inter, see
/// [`MachineModel::hierarchical_flat`]) contributes exactly `+0.0` and is
/// bit-identical to no hierarchy at all. That identity is the
/// `hierarchy-flattening` differential oracle of `optipart-testkit`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hierarchy {
    /// Intra-node latency in seconds per message.
    pub ts_intra: f64,
    /// Intra-node slowness in seconds per byte.
    pub tw_intra: f64,
    /// NIC-bypass energy of an intra-node byte, joules per byte.
    pub nic_intra_j_per_byte: f64,
}

/// Architectural parameters of a target machine.
///
/// Units follow Table 1: `tc` and `tw` are *slownesses* in seconds per byte
/// (1 / bandwidth); `ts` is the interconnect latency in seconds.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineModel {
    /// Human-readable machine name.
    pub name: String,
    /// Intranode memory slowness, seconds per byte per core
    /// (1 / per-core share of RAM bandwidth).
    pub tc: f64,
    /// Interconnect latency in seconds per message.
    pub ts: f64,
    /// Interconnect slowness in seconds per byte (1 / injection bandwidth
    /// available to a rank).
    pub tw: f64,
    /// MPI ranks placed per node (affects the node map and energy
    /// attribution, not per-rank costs).
    pub ranks_per_node: usize,
    /// Node power envelope for the energy model.
    pub power: NodePower,
    /// Optional two-level network model. `None` is the paper's flat machine;
    /// `Some` makes Eq. (3) and the energy model topology-aware (heavy edges
    /// that stay on-node cost `tw_intra`/`nic_intra` instead of the flat
    /// inter-node figures).
    pub hierarchy: Option<Hierarchy>,
}

impl MachineModel {
    /// ORNL Titan (Cray XK7): 16-core AMD Opteron 6274 per node, 32 GB,
    /// Gemini interconnect (§4: "Titan ... 18,688 nodes ... Gemini
    /// interconnect").
    ///
    /// Estimates: ~50 GB/s DDR3 per node shared by 16 cores → tc ≈ 1/3.1 GB/s
    /// per core; Gemini ~1.5 µs latency, ~3 GB/s per-rank injection.
    pub fn titan() -> Self {
        MachineModel {
            name: "titan".into(),
            tc: 1.0 / 3.1e9,
            ts: 1.5e-6,
            tw: 1.0 / 3.0e9,
            ranks_per_node: 16,
            power: NodePower {
                idle_w: 90.0,
                peak_w: 350.0,
                nic_j_per_byte: 0.3e-9,
            },
            hierarchy: None,
        }
    }

    /// TACC Stampede: dual 8-core Xeon E5-2680 per node, 56 Gb/s FDR
    /// InfiniBand fat tree (§4).
    ///
    /// Estimates: ~75 GB/s DDR3 per node / 16 cores; FDR IB ~1 µs latency,
    /// ~7 GB/s injection shared → ~4 GB/s per-rank effective.
    pub fn stampede() -> Self {
        MachineModel {
            name: "stampede".into(),
            tc: 1.0 / 4.7e9,
            ts: 1.0e-6,
            tw: 1.0 / 4.0e9,
            ranks_per_node: 16,
            power: NodePower {
                idle_w: 95.0,
                peak_w: 345.0,
                nic_j_per_byte: 0.25e-9,
            },
            hierarchy: None,
        }
    }

    /// CloudLab Wisconsin-8 (§4.1): 8 nodes, 2× Intel E5-2630 v3 8-core
    /// Haswell @2.40 GHz, 128 GB ECC, 10 GbE. The paper ran 256 MPI tasks on
    /// these 8 nodes (32 per node).
    ///
    /// 10 GbE = 1.25 GB/s per node shared by 32 ranks, with ~25 µs Ethernet
    /// latency — a *much* higher tw/tc ratio than the HPC machines, which is
    /// exactly why the tolerance optimum is pronounced on CloudLab (Figs.
    /// 7–10).
    pub fn cloudlab_wisconsin() -> Self {
        MachineModel {
            name: "wisconsin-8".into(),
            tc: 1.0 / 3.7e9,
            ts: 25.0e-6,
            tw: 1.0 / 0.04e9, // 1.25 GB/s node NIC / 32 ranks
            ranks_per_node: 32,
            power: NodePower {
                idle_w: 105.0,
                peak_w: 300.0,
                nic_j_per_byte: 6.0e-9,
            },
            hierarchy: None,
        }
    }

    /// CloudLab Clemson-32 (§4.1): 32 nodes, 2× Intel E5-2683 v3 14-core
    /// Haswell @2.00 GHz, 256 GB ECC, 10 GbE; 1792 MPI tasks (56 per node).
    pub fn cloudlab_clemson() -> Self {
        MachineModel {
            name: "clemson-32".into(),
            tc: 1.0 / 2.4e9,
            ts: 25.0e-6,
            tw: 1.0 / 0.0223e9, // 1.25 GB/s node NIC / 56 ranks
            ranks_per_node: 56,
            power: NodePower {
                idle_w: 130.0,
                peak_w: 380.0,
                nic_j_per_byte: 6.0e-9,
            },
            hierarchy: None,
        }
    }

    /// All four evaluation machines.
    pub fn presets() -> Vec<MachineModel> {
        vec![
            Self::titan(),
            Self::stampede(),
            Self::cloudlab_wisconsin(),
            Self::cloudlab_clemson(),
        ]
    }

    /// Looks a preset up by name (`titan`, `stampede`, `wisconsin-8`,
    /// `clemson-32`).
    pub fn by_name(name: &str) -> Option<MachineModel> {
        Self::presets().into_iter().find(|m| m.name == name)
    }

    /// A custom machine; power defaults to a generic dual-socket envelope.
    pub fn custom(name: &str, tc: f64, ts: f64, tw: f64, ranks_per_node: usize) -> Self {
        MachineModel {
            name: name.into(),
            tc,
            ts,
            tw,
            ranks_per_node,
            power: NodePower {
                idle_w: 100.0,
                peak_w: 330.0,
                nic_j_per_byte: 1.0e-9,
            },
            hierarchy: None,
        }
    }

    /// Attaches a two-level hierarchy (builder style).
    pub fn with_hierarchy(mut self, h: Hierarchy) -> Self {
        self.hierarchy = Some(h);
        self
    }

    /// The *degenerate* two-level machine: a hierarchy whose intra-node
    /// figures equal the flat inter-node ones. Every hierarchy-aware cost is
    /// written so this machine is bit-identical to the flat model — the
    /// `hierarchy-flattening` oracle's contract.
    pub fn hierarchical_flat(mut self) -> Self {
        self.hierarchy = Some(Hierarchy {
            ts_intra: self.ts,
            tw_intra: self.tw,
            nic_intra_j_per_byte: self.power.nic_j_per_byte,
        });
        self
    }

    /// An SMP-style hierarchy: shared-memory transport on-node. Power-of-two
    /// discounts (`tw/64`, `ts/16`, `nic/16`) so `scaled()` with a
    /// power-of-two factor stays bit-exact on the intra figures too.
    pub fn hierarchical_smp(mut self) -> Self {
        self.hierarchy = Some(Hierarchy {
            ts_intra: self.ts / 16.0,
            tw_intra: self.tw / 64.0,
            nic_intra_j_per_byte: self.power.nic_j_per_byte / 16.0,
        });
        self
    }

    /// A NUMA-style hierarchy: a milder on-node discount (`tw/8`, `ts/4`,
    /// `nic/4`) for machines whose intra-node fabric is itself a network.
    pub fn hierarchical_numa(mut self) -> Self {
        self.hierarchy = Some(Hierarchy {
            ts_intra: self.ts / 4.0,
            tw_intra: self.tw / 8.0,
            nic_intra_j_per_byte: self.power.nic_j_per_byte / 4.0,
        });
        self
    }

    /// Effective intra-node wire slowness: `tw_intra` under a hierarchy,
    /// the flat `tw` otherwise.
    #[inline]
    pub fn tw_intra(&self) -> f64 {
        match &self.hierarchy {
            Some(h) => h.tw_intra,
            None => self.tw,
        }
    }

    /// Topology-aware wire cost of `bytes_inter + bytes_intra` bytes in
    /// seconds: the flat charge plus the intra-node discount. The additive
    /// form makes a degenerate hierarchy (and no hierarchy) contribute an
    /// exact `+0.0` discount, so flat and flattened machines charge
    /// bit-identical costs.
    #[inline]
    pub fn comm_cost(&self, bytes_inter: u64, bytes_intra: u64) -> f64 {
        let flat = self.tw * (bytes_inter + bytes_intra) as f64;
        match &self.hierarchy {
            Some(h) => flat + (h.tw_intra - self.tw) * bytes_intra as f64,
            None => flat,
        }
    }

    /// Topology-aware NIC energy of a transfer in joules: `bytes` total, of
    /// which `bytes_intra` never left the node. Same additive-discount shape
    /// as [`MachineModel::comm_cost`].
    #[inline]
    pub fn nic_j(&self, bytes: u64, bytes_intra: u64) -> f64 {
        let flat = bytes as f64 * self.power.nic_j_per_byte;
        match &self.hierarchy {
            Some(h) => {
                flat + (h.nic_intra_j_per_byte - self.power.nic_j_per_byte) * bytes_intra as f64
            }
            None => flat,
        }
    }

    /// The same machine with every time coefficient (`tc`, `ts`, `tw`)
    /// multiplied by `c`. Eq. (3) is homogeneous of degree 1 in these, so a
    /// uniformly rescaled machine must induce the *same* partitioning
    /// decisions with all predicted times scaled by exactly `c` — the
    /// scale-invariance oracle of `optipart-testkit`. Use a power-of-two
    /// `c` for bit-exact floating-point scaling.
    pub fn scaled(&self, c: f64) -> Self {
        MachineModel {
            name: format!("{}×{c}", self.name),
            tc: self.tc * c,
            ts: self.ts * c,
            tw: self.tw * c,
            ranks_per_node: self.ranks_per_node,
            power: self.power,
            // Intra-node *times* scale with the machine; per-byte energy
            // stays put, like `power`.
            hierarchy: self.hierarchy.map(|h| Hierarchy {
                ts_intra: h.ts_intra * c,
                tw_intra: h.tw_intra * c,
                nic_intra_j_per_byte: h.nic_intra_j_per_byte,
            }),
        }
    }

    /// The node hosting a rank under this machine's placement.
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node
    }

    /// Number of nodes needed for `p` ranks.
    #[inline]
    pub fn nodes_for(&self, p: usize) -> usize {
        p.div_ceil(self.ranks_per_node)
    }

    /// Communication-to-computation cost ratio `tw / tc` — the "cost of
    /// communication vs. one unit of work" of the §3.2 thought experiment.
    /// Large values mean trading load balance for communication pays off.
    #[inline]
    pub fn comm_compute_ratio(&self) -> f64 {
        self.tw / self.tc
    }
}

/// Application parameters of the performance model (§3.3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AppModel {
    /// Memory accesses performed per unit of work. "If the target
    /// application is a 7-point stencil operation, then α will be ∼ 8."
    pub alpha: f64,
    /// Bytes moved per memory access / per communicated element (the unknown
    /// vector's scalar size plus indexing, in practice).
    pub elem_bytes: f64,
}

impl AppModel {
    /// The paper's test application: an adaptively discretised Laplacian
    /// (7-point-stencil-like) matvec, α ≈ 8, 8-byte doubles.
    pub fn laplacian_matvec() -> Self {
        AppModel {
            alpha: 8.0,
            elem_bytes: 8.0,
        }
    }

    /// A compute-light, communication-heavy kernel (e.g. low-order wave
    /// equation update): fewer accesses per element. Used to demonstrate
    /// *application*-awareness — the same mesh on the same machine partitions
    /// differently (footnote 1 of the paper: "e.g. for the Poisson equation
    /// vs the wave Equation on the same mesh").
    pub fn wave_matvec() -> Self {
        AppModel {
            alpha: 2.0,
            elem_bytes: 8.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_parameters() {
        for m in MachineModel::presets() {
            assert!(m.tc > 0.0 && m.tc < 1e-6, "{}: tc {:e}", m.name, m.tc);
            assert!(m.ts > 0.0 && m.ts < 1e-3, "{}: ts {:e}", m.name, m.ts);
            assert!(m.tw > 0.0 && m.tw < 1e-6, "{}: tw {:e}", m.name, m.tw);
            assert!(m.ranks_per_node >= 1);
            assert!(m.power.peak_w > m.power.idle_w);
        }
    }

    #[test]
    fn cloudlab_has_higher_comm_ratio_than_hpc() {
        // The ethernet clusters must make communication relatively more
        // expensive — the premise of the energy evaluation.
        let titan = MachineModel::titan().comm_compute_ratio();
        let wisc = MachineModel::cloudlab_wisconsin().comm_compute_ratio();
        let clem = MachineModel::cloudlab_clemson().comm_compute_ratio();
        assert!(wisc > 10.0 * titan);
        assert!(clem > 10.0 * titan);
    }

    #[test]
    fn node_mapping() {
        let m = MachineModel::cloudlab_wisconsin();
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(31), 0);
        assert_eq!(m.node_of(32), 1);
        assert_eq!(m.nodes_for(256), 8);
        assert_eq!(m.nodes_for(257), 9);
    }

    #[test]
    fn degenerate_hierarchy_costs_are_bit_identical_to_flat() {
        for m in MachineModel::presets() {
            let d = m.clone().hierarchical_flat();
            for (inter, intra) in [(0u64, 0u64), (1000, 0), (0, 1000), (123_457, 891)] {
                assert_eq!(
                    m.comm_cost(inter, intra).to_bits(),
                    d.comm_cost(inter, intra).to_bits(),
                    "{}: degenerate hierarchy drifted comm_cost",
                    m.name
                );
                assert_eq!(
                    m.nic_j(inter + intra, intra).to_bits(),
                    d.nic_j(inter + intra, intra).to_bits(),
                    "{}: degenerate hierarchy drifted nic_j",
                    m.name
                );
            }
        }
    }

    #[test]
    fn smp_hierarchy_discounts_intra_traffic() {
        let m = MachineModel::cloudlab_wisconsin().hierarchical_smp();
        let all_inter = m.comm_cost(1_000_000, 0);
        let all_intra = m.comm_cost(0, 1_000_000);
        assert!(all_intra < all_inter / 32.0, "{all_intra} vs {all_inter}");
        assert!(m.nic_j(1000, 1000) < m.nic_j(1000, 0));
    }

    #[test]
    fn scaled_scales_intra_times_but_not_energy() {
        let m = MachineModel::titan().hierarchical_numa();
        let s = m.scaled(4.0);
        let h = m.hierarchy.unwrap();
        let hs = s.hierarchy.unwrap();
        assert_eq!(hs.tw_intra.to_bits(), (h.tw_intra * 4.0).to_bits());
        assert_eq!(hs.ts_intra.to_bits(), (h.ts_intra * 4.0).to_bits());
        assert_eq!(
            hs.nic_intra_j_per_byte.to_bits(),
            h.nic_intra_j_per_byte.to_bits()
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(MachineModel::by_name("titan").is_some());
        assert!(MachineModel::by_name("clemson-32").is_some());
        assert!(MachineModel::by_name("summit").is_none());
    }
}
