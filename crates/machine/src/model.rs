//! Machine and application parameter sets (Table 1 of the paper).

use crate::energy::NodePower;

/// Architectural parameters of a target machine.
///
/// Units follow Table 1: `tc` and `tw` are *slownesses* in seconds per byte
/// (1 / bandwidth); `ts` is the interconnect latency in seconds.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineModel {
    /// Human-readable machine name.
    pub name: String,
    /// Intranode memory slowness, seconds per byte per core
    /// (1 / per-core share of RAM bandwidth).
    pub tc: f64,
    /// Interconnect latency in seconds per message.
    pub ts: f64,
    /// Interconnect slowness in seconds per byte (1 / injection bandwidth
    /// available to a rank).
    pub tw: f64,
    /// MPI ranks placed per node (affects the node map and energy
    /// attribution, not per-rank costs).
    pub ranks_per_node: usize,
    /// Node power envelope for the energy model.
    pub power: NodePower,
}

impl MachineModel {
    /// ORNL Titan (Cray XK7): 16-core AMD Opteron 6274 per node, 32 GB,
    /// Gemini interconnect (§4: "Titan ... 18,688 nodes ... Gemini
    /// interconnect").
    ///
    /// Estimates: ~50 GB/s DDR3 per node shared by 16 cores → tc ≈ 1/3.1 GB/s
    /// per core; Gemini ~1.5 µs latency, ~3 GB/s per-rank injection.
    pub fn titan() -> Self {
        MachineModel {
            name: "titan".into(),
            tc: 1.0 / 3.1e9,
            ts: 1.5e-6,
            tw: 1.0 / 3.0e9,
            ranks_per_node: 16,
            power: NodePower {
                idle_w: 90.0,
                peak_w: 350.0,
                nic_j_per_byte: 0.3e-9,
            },
        }
    }

    /// TACC Stampede: dual 8-core Xeon E5-2680 per node, 56 Gb/s FDR
    /// InfiniBand fat tree (§4).
    ///
    /// Estimates: ~75 GB/s DDR3 per node / 16 cores; FDR IB ~1 µs latency,
    /// ~7 GB/s injection shared → ~4 GB/s per-rank effective.
    pub fn stampede() -> Self {
        MachineModel {
            name: "stampede".into(),
            tc: 1.0 / 4.7e9,
            ts: 1.0e-6,
            tw: 1.0 / 4.0e9,
            ranks_per_node: 16,
            power: NodePower {
                idle_w: 95.0,
                peak_w: 345.0,
                nic_j_per_byte: 0.25e-9,
            },
        }
    }

    /// CloudLab Wisconsin-8 (§4.1): 8 nodes, 2× Intel E5-2630 v3 8-core
    /// Haswell @2.40 GHz, 128 GB ECC, 10 GbE. The paper ran 256 MPI tasks on
    /// these 8 nodes (32 per node).
    ///
    /// 10 GbE = 1.25 GB/s per node shared by 32 ranks, with ~25 µs Ethernet
    /// latency — a *much* higher tw/tc ratio than the HPC machines, which is
    /// exactly why the tolerance optimum is pronounced on CloudLab (Figs.
    /// 7–10).
    pub fn cloudlab_wisconsin() -> Self {
        MachineModel {
            name: "wisconsin-8".into(),
            tc: 1.0 / 3.7e9,
            ts: 25.0e-6,
            tw: 1.0 / 0.04e9, // 1.25 GB/s node NIC / 32 ranks
            ranks_per_node: 32,
            power: NodePower {
                idle_w: 105.0,
                peak_w: 300.0,
                nic_j_per_byte: 6.0e-9,
            },
        }
    }

    /// CloudLab Clemson-32 (§4.1): 32 nodes, 2× Intel E5-2683 v3 14-core
    /// Haswell @2.00 GHz, 256 GB ECC, 10 GbE; 1792 MPI tasks (56 per node).
    pub fn cloudlab_clemson() -> Self {
        MachineModel {
            name: "clemson-32".into(),
            tc: 1.0 / 2.4e9,
            ts: 25.0e-6,
            tw: 1.0 / 0.0223e9, // 1.25 GB/s node NIC / 56 ranks
            ranks_per_node: 56,
            power: NodePower {
                idle_w: 130.0,
                peak_w: 380.0,
                nic_j_per_byte: 6.0e-9,
            },
        }
    }

    /// All four evaluation machines.
    pub fn presets() -> Vec<MachineModel> {
        vec![
            Self::titan(),
            Self::stampede(),
            Self::cloudlab_wisconsin(),
            Self::cloudlab_clemson(),
        ]
    }

    /// Looks a preset up by name (`titan`, `stampede`, `wisconsin-8`,
    /// `clemson-32`).
    pub fn by_name(name: &str) -> Option<MachineModel> {
        Self::presets().into_iter().find(|m| m.name == name)
    }

    /// A custom machine; power defaults to a generic dual-socket envelope.
    pub fn custom(name: &str, tc: f64, ts: f64, tw: f64, ranks_per_node: usize) -> Self {
        MachineModel {
            name: name.into(),
            tc,
            ts,
            tw,
            ranks_per_node,
            power: NodePower {
                idle_w: 100.0,
                peak_w: 330.0,
                nic_j_per_byte: 1.0e-9,
            },
        }
    }

    /// The same machine with every time coefficient (`tc`, `ts`, `tw`)
    /// multiplied by `c`. Eq. (3) is homogeneous of degree 1 in these, so a
    /// uniformly rescaled machine must induce the *same* partitioning
    /// decisions with all predicted times scaled by exactly `c` — the
    /// scale-invariance oracle of `optipart-testkit`. Use a power-of-two
    /// `c` for bit-exact floating-point scaling.
    pub fn scaled(&self, c: f64) -> Self {
        MachineModel {
            name: format!("{}×{c}", self.name),
            tc: self.tc * c,
            ts: self.ts * c,
            tw: self.tw * c,
            ranks_per_node: self.ranks_per_node,
            power: self.power,
        }
    }

    /// The node hosting a rank under this machine's placement.
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node
    }

    /// Number of nodes needed for `p` ranks.
    #[inline]
    pub fn nodes_for(&self, p: usize) -> usize {
        p.div_ceil(self.ranks_per_node)
    }

    /// Communication-to-computation cost ratio `tw / tc` — the "cost of
    /// communication vs. one unit of work" of the §3.2 thought experiment.
    /// Large values mean trading load balance for communication pays off.
    #[inline]
    pub fn comm_compute_ratio(&self) -> f64 {
        self.tw / self.tc
    }
}

/// Application parameters of the performance model (§3.3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AppModel {
    /// Memory accesses performed per unit of work. "If the target
    /// application is a 7-point stencil operation, then α will be ∼ 8."
    pub alpha: f64,
    /// Bytes moved per memory access / per communicated element (the unknown
    /// vector's scalar size plus indexing, in practice).
    pub elem_bytes: f64,
}

impl AppModel {
    /// The paper's test application: an adaptively discretised Laplacian
    /// (7-point-stencil-like) matvec, α ≈ 8, 8-byte doubles.
    pub fn laplacian_matvec() -> Self {
        AppModel {
            alpha: 8.0,
            elem_bytes: 8.0,
        }
    }

    /// A compute-light, communication-heavy kernel (e.g. low-order wave
    /// equation update): fewer accesses per element. Used to demonstrate
    /// *application*-awareness — the same mesh on the same machine partitions
    /// differently (footnote 1 of the paper: "e.g. for the Poisson equation
    /// vs the wave Equation on the same mesh").
    pub fn wave_matvec() -> Self {
        AppModel {
            alpha: 2.0,
            elem_bytes: 8.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_parameters() {
        for m in MachineModel::presets() {
            assert!(m.tc > 0.0 && m.tc < 1e-6, "{}: tc {:e}", m.name, m.tc);
            assert!(m.ts > 0.0 && m.ts < 1e-3, "{}: ts {:e}", m.name, m.ts);
            assert!(m.tw > 0.0 && m.tw < 1e-6, "{}: tw {:e}", m.name, m.tw);
            assert!(m.ranks_per_node >= 1);
            assert!(m.power.peak_w > m.power.idle_w);
        }
    }

    #[test]
    fn cloudlab_has_higher_comm_ratio_than_hpc() {
        // The ethernet clusters must make communication relatively more
        // expensive — the premise of the energy evaluation.
        let titan = MachineModel::titan().comm_compute_ratio();
        let wisc = MachineModel::cloudlab_wisconsin().comm_compute_ratio();
        let clem = MachineModel::cloudlab_clemson().comm_compute_ratio();
        assert!(wisc > 10.0 * titan);
        assert!(clem > 10.0 * titan);
    }

    #[test]
    fn node_mapping() {
        let m = MachineModel::cloudlab_wisconsin();
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(31), 0);
        assert_eq!(m.node_of(32), 1);
        assert_eq!(m.nodes_for(256), 8);
        assert_eq!(m.nodes_for(257), 9);
    }

    #[test]
    fn lookup_by_name() {
        assert!(MachineModel::by_name("titan").is_some());
        assert!(MachineModel::by_name("clemson-32").is_some());
        assert!(MachineModel::by_name("summit").is_none());
    }
}
