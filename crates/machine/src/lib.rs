//! # optipart-machine — machine models, performance model, energy model
//!
//! The OptiPart partitioner (HPDC'17) is *architecture-aware*: it consumes a
//! machine model — memory slowness `tc`, network latency `ts`, network
//! slowness `tw` (Table 1 of the paper) — and an *application model* — `α`,
//! the number of memory accesses per unit of work (§3.3) — and predicts the
//! runtime of a candidate partition with Eq. (3):
//!
//! ```text
//! Tp = α · tc · Wmax + tw · Cmax
//! ```
//!
//! This crate provides:
//!
//! * [`MachineModel`] — the four machines of the paper's evaluation as
//!   presets ([`MachineModel::titan`], [`MachineModel::stampede`],
//!   [`MachineModel::cloudlab_wisconsin`], [`MachineModel::cloudlab_clemson`])
//!   plus constructors for custom machines.
//! * [`AppModel`] — the application parameters (`α`, element size) obtained
//!   in practice "using a simple sequential profiling of the main execution
//!   kernel" (§3.3).
//! * [`PerfModel`] — Eq. (3) and the collective cost models of Eqs. (1)–(2).
//! * [`energy`] — the power/energy substrate standing in for the paper's
//!   IPMI measurements on CloudLab (§4.1): per-node power traces built from
//!   simulated activity intervals, sampled at 1 Hz like the paper's on-board
//!   sensors, and integrated to Joules.
//!
//! ## Substitution note (per DESIGN.md)
//!
//! The paper measures real hardware; we cannot. The preset constants below
//! are order-of-magnitude estimates from the published specs of each system
//! (Gemini/FDR-IB/10GbE bandwidths, DDR3/DDR4 bandwidths, Haswell node power
//! envelopes). Every figure reproduced from these models is a *shape*
//! reproduction: who wins, how curves bend, where optima sit — not absolute
//! seconds or Joules.

pub mod energy;
pub mod model;
pub mod perf;

pub use energy::{ActivityKind, EnergyReport, IpmiSampler, NodePower, PowerTrace};
pub use model::{AppModel, Hierarchy, MachineModel};
pub use perf::PerfModel;

// Property-test suites need the external `proptest` crate, which the
// offline tier-1 build cannot fetch; enable with `--features proptest`
// once a vendored copy is available.
#[cfg(all(test, feature = "proptest"))]
mod proptests;
