//! Property-based tests for the octree substrate.
//!
//! Strategies come from `optipart_testkit::strategies`; all other items
//! are the testkit re-exports (`optipart_testkit::octree::…`) rather than
//! `crate::…` paths — the unit-test target is a separate compilation of
//! this crate, so mixing the two would break type identity.

use optipart_testkit::octree::balance::{balance21, is_balanced21};
use optipart_testkit::octree::generate::{sample_points, tree_from_points, Distribution};
use optipart_testkit::octree::linear::{domain_volume, is_linear, volume_u128, LinearTree};
use optipart_testkit::octree::neighbors::{face_adjacent_leaves, find_leaf};
use optipart_testkit::sfc::{Cell3, MAX_DEPTH};
use optipart_testkit::strategies::{curve, distribution};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated mesh is a complete linear octree.
    #[test]
    fn generated_mesh_invariants(seed in 0u64..1000, n in 16usize..400, c in curve(), d in distribution()) {
        let pts = sample_points::<3>(d, n, seed);
        let t = tree_from_points(&pts, 1, 10, c);
        prop_assert!(is_linear(t.leaves()));
        prop_assert!(t.is_complete());
        // Every sample point is covered by exactly one leaf.
        for p in &pts {
            prop_assert!(find_leaf(t.leaves(), *p, c).is_some());
        }
    }

    /// Completion always tiles the domain and keeps all seeds.
    #[test]
    fn completion_invariant(seed in 0u64..1000, n in 1usize..40, c in curve()) {
        let pts = sample_points::<3>(Distribution::Uniform, n, seed);
        let cells: Vec<Cell3> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| Cell3::new(*p, 3 + (i % 5) as u8))
            .collect();
        let t = LinearTree::from_cells(cells, c);
        let completed = t.completed();
        prop_assert!(completed.is_complete());
        prop_assert!(is_linear(completed.leaves()));
        for kc in t.leaves() {
            prop_assert!(
                completed.leaves().iter().any(|l| l.cell == kc.cell),
                "seed leaf lost in completion"
            );
        }
    }

    /// balance21 establishes the invariant and never coarsens.
    #[test]
    fn balance_invariant(seed in 0u64..500, n in 8usize..60, c in curve()) {
        let pts = sample_points::<3>(Distribution::Normal, n, seed);
        let t = tree_from_points(&pts, 1, 8, c);
        let b = balance21(&t);
        prop_assert!(is_balanced21(&b));
        prop_assert!(b.is_complete());
        prop_assert!(b.len() >= t.len());
        // Never coarsens: every original leaf region is covered by leaves of
        // equal or finer level.
        for kc in t.leaves() {
            let i = find_leaf(b.leaves(), kc.cell.anchor(), c).unwrap();
            prop_assert!(b.leaves()[i].cell.level() >= kc.cell.level());
        }
    }

    /// Face adjacency is symmetric on generated meshes.
    #[test]
    fn adjacency_symmetry(seed in 0u64..500, c in curve()) {
        let pts = sample_points::<3>(Distribution::Normal, 60, seed);
        let t = tree_from_points(&pts, 1, 8, c);
        let leaves = t.leaves();
        for i in 0..leaves.len().min(40) {
            for j in face_adjacent_leaves(leaves, i, c) {
                prop_assert!(
                    face_adjacent_leaves(leaves, j, c).contains(&i),
                    "adjacency not symmetric between {i} and {j}"
                );
            }
        }
    }

    /// The volume covered by leaves is conserved by coarsening.
    #[test]
    fn coarsen_preserves_volume(seed in 0u64..500, c in curve()) {
        let pts = sample_points::<3>(Distribution::Uniform, 64, seed);
        let t = tree_from_points(&pts, 1, 6, c);
        let co = t.coarsened();
        let v1: u128 = t.leaves().iter().map(|kc| volume_u128::<3>(&kc.cell)).sum();
        let v2: u128 = co.leaves().iter().map(|kc| volume_u128::<3>(&kc.cell)).sum();
        prop_assert_eq!(v1, v2);
        prop_assert_eq!(v1, domain_volume::<3>());
        prop_assert!(co.len() <= t.len());
    }

    /// find_leaf agrees with brute force containment scan.
    #[test]
    fn find_leaf_matches_bruteforce(seed in 0u64..500, c in curve(),
                                    x in 0u32..(1 << MAX_DEPTH),
                                    y in 0u32..(1 << MAX_DEPTH),
                                    z in 0u32..(1 << MAX_DEPTH)) {
        let pts = sample_points::<3>(Distribution::Normal, 50, seed);
        let t = tree_from_points(&pts, 1, 7, c);
        let leaves = t.leaves();
        let fast = find_leaf(leaves, [x, y, z], c);
        let brute = leaves.iter().position(|kc| kc.cell.contains_point([x, y, z]));
        prop_assert_eq!(fast, brute);
    }
}
