//! 2:1 face-balance enforcement.
//!
//! Real AMR codes (and the FEM substrate here) maintain the *2:1 balance*
//! invariant: face-adjacent leaves differ by at most one refinement level,
//! so a face sees at most `2^(D-1)` finer neighbours. The paper's meshes are
//! Dendro octrees, which are 2:1 balanced; we provide the same guarantee via
//! iterated ripple refinement (the "balance refinement" of Sundar et al.
//! 2008, simplified to faces).

use crate::linear::LinearTree;
use optipart_sfc::Cell;
use std::collections::HashSet;

/// Returns a 2:1 face-balanced refinement of `tree` (only ever refines,
/// never coarsens, so every input leaf region stays at least as fine).
pub fn balance21<const D: usize>(tree: &LinearTree<D>) -> LinearTree<D> {
    let mut leaves: HashSet<Cell<D>> = tree.leaves().iter().map(|kc| kc.cell).collect();
    let mut queue: Vec<Cell<D>> = leaves.iter().copied().collect();

    while let Some(cell) = queue.pop() {
        if !leaves.contains(&cell) {
            continue; // already split by an earlier ripple
        }
        if cell.level() < 2 {
            continue; // nothing can be 2 levels coarser
        }
        for axis in 0..D {
            for dir in [-1i8, 1] {
                let Some(region) = cell.face_neighbor(axis, dir) else {
                    continue;
                };
                // A leaf covering `region` that is 2+ levels coarser than
                // `cell` violates balance. Walk candidate ancestors from the
                // first violating level upwards.
                let mut lvl = cell.level() - 2;
                loop {
                    let cand = Cell::<D>::new(region.anchor(), lvl);
                    if leaves.remove(&cand) {
                        // Split the violator; its children may still violate
                        // (w.r.t. this or other cells), so enqueue them, and
                        // re-enqueue `cell` to re-check this face.
                        for ch in cand.children() {
                            leaves.insert(ch);
                            queue.push(ch);
                        }
                        queue.push(cell);
                        break;
                    }
                    if lvl == 0 {
                        break;
                    }
                    lvl -= 1;
                }
            }
        }
    }
    LinearTree::from_cells(leaves.into_iter().collect(), tree.curve())
}

/// Whether every pair of face-adjacent leaves differs by at most one level.
pub fn is_balanced21<const D: usize>(tree: &LinearTree<D>) -> bool {
    let leaves = tree.leaves();
    for idx in 0..leaves.len() {
        for j in crate::neighbors::face_adjacent_leaves(leaves, idx, tree.curve()) {
            let a = leaves[idx].cell.level() as i32;
            let b = leaves[j].cell.level() as i32;
            if (a - b).abs() > 1 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use optipart_sfc::{Cell3, Curve};

    #[test]
    fn uniform_grid_is_already_balanced() {
        let t = LinearTree::<3>::root(Curve::Hilbert).refine_where(|c| c.level() < 2, 2);
        assert!(is_balanced21(&t));
        let b = balance21(&t);
        assert_eq!(b.len(), t.len());
    }

    #[test]
    fn sharp_refinement_gets_balanced() {
        // Level-1 grid with deep refinement hugging the x = 0.5 plane: the
        // level-5 leaves there face a level-1 leaf across the plane, which
        // violates 2:1. (Concentric "onion" refinement would already be
        // balanced; the violation needs refinement abutting a coarse cell.)
        use optipart_sfc::MAX_DEPTH;
        let probe = [(1u32 << (MAX_DEPTH - 1)) - 1, 0, 0];
        let t = LinearTree::<3>::root(Curve::Hilbert)
            .refine_where(|c| c.level() < 1, 1)
            .refine_where(|c: &Cell3| c.contains_point(probe) && c.level() < 5, 5);
        assert!(!is_balanced21(&t));
        let b = balance21(&t);
        assert!(is_balanced21(&b), "balance21 must establish the invariant");
        assert!(b.is_complete());
        assert!(b.len() > t.len(), "balancing refines");
        // The level-5 leaf must survive (balancing never coarsens).
        let fine_leaf = b
            .leaves()
            .iter()
            .find(|kc| kc.cell.contains_point(probe))
            .unwrap();
        assert_eq!(fine_leaf.cell.level(), 5);
    }

    #[test]
    fn balancing_is_idempotent() {
        let t = LinearTree::<3>::root(Curve::Morton)
            .refine_where(|c: &Cell3| c.contains_point([1, 1, 1]) && c.level() < 4, 4);
        let b1 = balance21(&t);
        let b2 = balance21(&b1);
        assert_eq!(b1.len(), b2.len());
        assert!(is_balanced21(&b2));
    }

    #[test]
    fn balance_works_in_2d() {
        let t = LinearTree::<2>::root(Curve::Hilbert)
            .refine_where(|c| c.contains_point([0, 0]) && c.level() < 5, 5);
        let b = balance21(&t);
        assert!(is_balanced21(&b));
        assert!(b.is_complete());
    }
}
