//! Leaf lookup and face-neighbour enumeration on linear octrees.
//!
//! These primitives back both the ghost-layer construction of the FEM
//! substrate and the partition-boundary metrics of the paper's Algorithm 2.
//! All queries are `O(log n)` binary searches on the curve keys, exploiting
//! the fact that the descendants of any region occupy a contiguous key range
//! and a containing ancestor (if present as a leaf) is the immediate key
//! predecessor of that range.

use optipart_sfc::{Cell, Curve, KeyedCell, Point, SfcKey};

/// Indices of all leaves overlapping `region` (descendants, the region
/// itself, or one containing ancestor) in a sorted linear leaf array.
pub fn overlapping_leaves<const D: usize>(
    leaves: &[KeyedCell<D>],
    region: &Cell<D>,
    curve: Curve,
) -> Vec<usize> {
    overlapping_leaves_keyed(leaves, region, SfcKey::of(region, curve))
}

/// [`overlapping_leaves`] with the region's key precomputed — callers in
/// hot loops often already hold it (e.g. after an ownership check).
pub fn overlapping_leaves_keyed<const D: usize>(
    leaves: &[KeyedCell<D>],
    region: &Cell<D>,
    key: SfcKey,
) -> Vec<usize> {
    debug_assert_eq!(key.level(), region.level());
    let start = leaves.partition_point(|kc| kc.key < key);
    let mut out = Vec::new();
    let mut j = start;
    while j < leaves.len() && region.contains(&leaves[j].cell) {
        out.push(j);
        j += 1;
    }
    if out.is_empty() && start > 0 && leaves[start - 1].cell.contains(region) {
        out.push(start - 1);
    }
    out
}

/// Index of the unique leaf containing `point`, if any.
pub fn find_leaf<const D: usize>(
    leaves: &[KeyedCell<D>],
    point: Point<D>,
    curve: Curve,
) -> Option<usize> {
    let cell = Cell::<D>::from_point(point);
    overlapping_leaves(leaves, &cell, curve).into_iter().next()
}

/// Indices of all leaves sharing a face with `leaves[idx]`.
///
/// Works for arbitrary (not necessarily 2:1-balanced) linear trees: for each
/// of the `2D` face directions, the same-size virtual neighbour region is
/// located and its overlapping leaves filtered by true face adjacency.
pub fn face_adjacent_leaves<const D: usize>(
    leaves: &[KeyedCell<D>],
    idx: usize,
    curve: Curve,
) -> Vec<usize> {
    let cell = leaves[idx].cell;
    let mut out = Vec::new();
    for axis in 0..D {
        for dir in [-1i8, 1] {
            let Some(region) = cell.face_neighbor(axis, dir) else {
                continue;
            };
            for j in overlapping_leaves(leaves, &region, curve) {
                if cell.shares_face_with(&leaves[j].cell) {
                    out.push(j);
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Total face area each leaf exposes to leaves *outside* the index range
/// `[lo, hi)` — the partition surface `s` of Fig. 2 for the partition
/// holding that contiguous curve segment. Domain boundary faces are not
/// counted (they need no communication).
pub fn segment_surface<const D: usize>(
    leaves: &[KeyedCell<D>],
    lo: usize,
    hi: usize,
    curve: Curve,
) -> u64 {
    let mut area = 0u64;
    for idx in lo..hi {
        let cell = leaves[idx].cell;
        for axis in 0..D {
            for dir in [-1i8, 1] {
                let Some(region) = cell.face_neighbor(axis, dir) else {
                    continue;
                };
                for j in overlapping_leaves(leaves, &region, curve) {
                    if (j < lo || j >= hi) && cell.shares_face_with(&leaves[j].cell) {
                        area += cell.shared_face_area(&leaves[j].cell);
                    }
                }
            }
        }
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearTree;
    use optipart_sfc::{Cell3, MAX_DEPTH};

    fn uniform(level: u8, curve: Curve) -> LinearTree<3> {
        LinearTree::root(curve).refine_where(|c| c.level() < level, level)
    }

    #[test]
    fn find_leaf_on_uniform_grid() {
        for curve in Curve::ALL {
            let t = uniform(2, curve);
            let leaves = t.leaves();
            // Every leaf's own anchor maps back to it.
            for (i, kc) in leaves.iter().enumerate() {
                assert_eq!(find_leaf(leaves, kc.cell.anchor(), curve), Some(i));
            }
            // An interior point of leaf 0.
            let a = leaves[0].cell.anchor();
            let mid = [a[0] + 1, a[1] + 1, a[2] + 1];
            assert_eq!(find_leaf(leaves, mid, curve), Some(0));
        }
    }

    #[test]
    fn find_leaf_in_adaptive_tree() {
        for curve in Curve::ALL {
            let t = LinearTree::root(curve)
                .refine_where(|c: &Cell3| c.contains_point([0, 0, 0]) && c.level() < 6, 6);
            let leaves = t.leaves();
            // Origin lives in the level-6 leaf.
            let i = find_leaf(leaves, [0, 0, 0], curve).unwrap();
            assert_eq!(leaves[i].cell.level(), 6);
            // Far corner lives in a level-1 leaf.
            let far = [(1u32 << MAX_DEPTH) - 1; 3];
            let j = find_leaf(leaves, far, curve).unwrap();
            assert_eq!(leaves[j].cell.level(), 1);
        }
    }

    #[test]
    fn interior_cell_has_six_neighbors_on_uniform_grid() {
        for curve in Curve::ALL {
            let t = uniform(2, curve);
            let leaves = t.leaves();
            // Find an interior cell (anchor not on the domain boundary).
            let side = leaves[0].cell.side();
            let max = (1u32 << MAX_DEPTH) - side;
            let (i, _) = leaves
                .iter()
                .enumerate()
                .find(|(_, kc)| kc.cell.anchor().iter().all(|&a| a > 0 && a < max))
                .expect("interior cell exists at level 2");
            assert_eq!(face_adjacent_leaves(leaves, i, curve).len(), 6, "{curve}");
        }
    }

    #[test]
    fn corner_cell_has_three_neighbors() {
        for curve in Curve::ALL {
            let t = uniform(1, curve);
            let leaves = t.leaves();
            for i in 0..leaves.len() {
                assert_eq!(face_adjacent_leaves(leaves, i, curve).len(), 3);
            }
        }
    }

    #[test]
    fn neighbors_across_refinement_levels() {
        // Refine one corner octant: the coarse neighbours see the fine cells
        // and vice versa.
        let curve = Curve::Hilbert;
        let t = LinearTree::root(curve)
            .refine_where(|c: &Cell3| c.level() < 1, 1)
            .refine_where(|c: &Cell3| c.contains_point([0, 0, 0]) && c.level() < 2, 2);
        let leaves = t.leaves();
        assert_eq!(leaves.len(), 15);
        // A level-2 cell on the +x face of the refined octant.
        let half = 1u32 << (MAX_DEPTH - 2);
        let fine = leaves
            .iter()
            .position(|kc| kc.cell.anchor() == [half, 0, 0] && kc.cell.level() == 2)
            .unwrap();
        let nbrs = face_adjacent_leaves(leaves, fine, curve);
        // Neighbours: -x (fine), +x (coarse level-1), ±y ±z (fine) = at least
        // one coarse neighbour among them.
        assert!(nbrs.iter().any(|&j| leaves[j].cell.level() == 1));
        assert!(nbrs.iter().any(|&j| leaves[j].cell.level() == 2));
        // Adjacency is symmetric.
        for &j in &nbrs {
            assert!(
                face_adjacent_leaves(leaves, j, curve).contains(&fine),
                "symmetry violated for neighbour {j}"
            );
        }
    }

    #[test]
    fn segment_surface_whole_domain_is_zero() {
        let t = uniform(2, Curve::Hilbert);
        let n = t.len();
        assert_eq!(segment_surface(t.leaves(), 0, n, Curve::Hilbert), 0);
    }

    #[test]
    fn segment_surface_halves_are_symmetric() {
        for curve in Curve::ALL {
            let t = uniform(2, curve);
            let n = t.len();
            let a = segment_surface(t.leaves(), 0, n / 2, curve);
            let b = segment_surface(t.leaves(), n / 2, n, curve);
            assert_eq!(a, b, "{curve}: the two halves share the same interface");
            assert!(a > 0);
        }
    }

    #[test]
    fn hilbert_segment_surface_no_worse_than_morton() {
        let th = uniform(3, Curve::Hilbert);
        let tm = uniform(3, Curve::Morton);
        let n = th.len();
        let sh = segment_surface(th.leaves(), 0, n / 2, Curve::Hilbert);
        let sm = segment_surface(tm.leaves(), 0, n / 2, Curve::Morton);
        assert!(sh <= sm, "hilbert {sh} vs morton {sm}");
    }

    #[test]
    fn overlapping_leaves_finds_ancestor() {
        let curve = Curve::Morton;
        let t = uniform(1, curve);
        let leaves = t.leaves();
        // Query a level-3 region inside leaf 0.
        let region = leaves[0].cell.child(0).child(0);
        let hits = overlapping_leaves(leaves, &region, curve);
        assert_eq!(hits, vec![0]);
    }

    #[test]
    fn overlapping_leaves_finds_descendants() {
        let curve = Curve::Hilbert;
        let t = uniform(2, curve);
        let leaves = t.leaves();
        // Query a level-1 region: must hit exactly 8 level-2 leaves.
        let region = Cell3::new([0, 0, 0], 1);
        let hits = overlapping_leaves(leaves, &region, curve);
        assert_eq!(hits.len(), 8);
        for h in hits {
            assert!(region.contains(&leaves[h].cell));
        }
    }
}
