//! Linear octrees: sorted, non-overlapping leaf arrays.
//!
//! A *linear* octree stores only leaves, ordered along a space-filling curve
//! — the representation of Dendro and p4est that all the paper's algorithms
//! assume. A *complete* linear octree additionally tiles the whole domain.

use optipart_sfc::{Cell, Curve, KeyedCell, MAX_DEPTH};

/// A linear (sorted, non-overlapping) tree of leaf cells on a chosen curve.
#[derive(Clone, Debug)]
pub struct LinearTree<const D: usize> {
    curve: Curve,
    leaves: Vec<KeyedCell<D>>,
}

impl<const D: usize> LinearTree<D> {
    /// Builds a linear tree from arbitrary cells: keys, sorts, removes
    /// duplicates and resolves overlaps by keeping the **finest** cell
    /// (matching AMR semantics where refined regions win).
    ///
    /// ```
    /// use optipart_octree::LinearTree;
    /// use optipart_sfc::{Cell3, Curve};
    /// let coarse = Cell3::new([0, 0, 0], 1);
    /// let fine = coarse.child(0); // overlaps `coarse`
    /// let tree = LinearTree::from_cells(vec![coarse, fine], Curve::Hilbert);
    /// assert_eq!(tree.len(), 1);
    /// assert_eq!(tree.leaves()[0].cell, fine);
    /// ```
    pub fn from_cells(cells: Vec<Cell<D>>, curve: Curve) -> Self {
        let mut keyed = KeyedCell::key_all(&cells, curve);
        keyed.sort_unstable();
        keyed.dedup_by(|a, b| a.cell == b.cell);
        // Ancestors sort immediately before their descendants; a linear scan
        // keeping the latest (finest) covering cell removes them.
        let mut out: Vec<KeyedCell<D>> = Vec::with_capacity(keyed.len());
        for kc in keyed {
            while let Some(last) = out.last() {
                if last.cell.contains(&kc.cell) {
                    out.pop();
                } else {
                    break;
                }
            }
            out.push(kc);
        }
        LinearTree { curve, leaves: out }
    }

    /// Wraps already-sorted, already-linear leaves (debug-asserted).
    pub fn from_sorted(leaves: Vec<KeyedCell<D>>, curve: Curve) -> Self {
        debug_assert!(is_linear(&leaves));
        LinearTree { curve, leaves }
    }

    /// The complete tree with a single leaf: the root.
    pub fn root(curve: Curve) -> Self {
        LinearTree {
            curve,
            leaves: vec![KeyedCell::new(Cell::root(), curve)],
        }
    }

    /// Curve used for ordering.
    #[inline]
    pub fn curve(&self) -> Curve {
        self.curve
    }

    /// The sorted leaves.
    #[inline]
    pub fn leaves(&self) -> &[KeyedCell<D>] {
        &self.leaves
    }

    /// Number of leaves.
    #[inline]
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Whether the tree has no leaves.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Consumes into the sorted leaf vector.
    pub fn into_leaves(self) -> Vec<KeyedCell<D>> {
        self.leaves
    }

    /// Whether the leaves tile the entire domain.
    pub fn is_complete(&self) -> bool {
        let total: u128 = self
            .leaves
            .iter()
            .map(|kc| volume_u128::<D>(&kc.cell))
            .sum();
        total == domain_volume::<D>()
    }

    /// Completes the tree: fills uncovered space with the coarsest cells
    /// that do not overlap existing leaves (the completion step of
    /// Sundar et al. 2008, Algorithm 3 there).
    pub fn completed(&self) -> Self {
        let mut out = Vec::with_capacity(self.leaves.len());
        complete_recursive(Cell::root(), &self.leaves, self.curve, &mut out);
        LinearTree {
            curve: self.curve,
            leaves: out,
        }
    }

    /// Refines every leaf for which `pred` holds, repeatedly, until no leaf
    /// satisfies the predicate or `max_level` is reached.
    pub fn refine_where(&self, mut pred: impl FnMut(&Cell<D>) -> bool, max_level: u8) -> Self {
        let max_level = max_level.min(MAX_DEPTH);
        let mut work: Vec<Cell<D>> = self.leaves.iter().map(|kc| kc.cell).collect();
        let mut done: Vec<Cell<D>> = Vec::with_capacity(work.len());
        while let Some(c) = work.pop() {
            if c.level() < max_level && pred(&c) {
                work.extend(c.children());
            } else {
                done.push(c);
            }
        }
        Self::from_cells(done, self.curve)
    }

    /// One coarsening sweep: every complete group of `2^D` sibling leaves is
    /// replaced by its parent (the coarsening step of the authors' earlier
    /// bottom-up scheme [Sundar et al. 2008] that §3 discusses).
    pub fn coarsened(&self) -> Self {
        let mut out: Vec<Cell<D>> = Vec::with_capacity(self.leaves.len());
        let n = self.leaves.len();
        let mut i = 0;
        let group = 1 << D;
        while i < n {
            let c = self.leaves[i].cell;
            if c.level() > 0 && c.child_number() == 0 && i + group <= n {
                let parent = c.parent().expect("level > 0");
                let all_siblings =
                    (0..group).all(|j| self.leaves[i + j].cell.parent() == Some(parent));
                if all_siblings {
                    out.push(parent);
                    i += group;
                    continue;
                }
            }
            out.push(c);
            i += 1;
        }
        Self::from_cells(out, self.curve)
    }

    /// Re-keys the same leaves on a different curve.
    pub fn with_curve(&self, curve: Curve) -> Self {
        Self::from_cells(self.leaves.iter().map(|kc| kc.cell).collect(), curve)
    }
}

/// Whether a keyed slice is sorted and non-overlapping.
pub fn is_linear<const D: usize>(leaves: &[KeyedCell<D>]) -> bool {
    leaves
        .windows(2)
        .all(|w| w[0].key < w[1].key && !w[0].cell.overlaps(&w[1].cell))
}

/// Domain volume in finest-cell units (`2^(D·MAX_DEPTH)`).
pub fn domain_volume<const D: usize>() -> u128 {
    1u128 << (D as u32 * MAX_DEPTH as u32)
}

/// Cell volume as `u128` (no saturation, unlike `Cell::volume`).
pub fn volume_u128<const D: usize>(cell: &Cell<D>) -> u128 {
    1u128 << ((MAX_DEPTH - cell.level()) as u32 * D as u32)
}

fn complete_recursive<const D: usize>(
    region: Cell<D>,
    seeds: &[KeyedCell<D>],
    curve: Curve,
    out: &mut Vec<KeyedCell<D>>,
) {
    // Seeds overlapping this region.
    let relevant: Vec<&KeyedCell<D>> = seeds
        .iter()
        .filter(|kc| region.overlaps(&kc.cell))
        .collect();
    if relevant.is_empty() {
        out.push(KeyedCell::new(region, curve));
        return;
    }
    if relevant.len() == 1 && relevant[0].cell.contains(&region) {
        out.push(KeyedCell::new(region, curve));
        return;
    }
    // Region contains seeds strictly inside: recurse in curve order.
    let mut kids: Vec<KeyedCell<D>> = region
        .children()
        .into_iter()
        .map(|c| KeyedCell::new(c, curve))
        .collect();
    kids.sort_unstable();
    let owned: Vec<KeyedCell<D>> = relevant.into_iter().copied().collect();
    for kid in kids {
        complete_recursive(kid.cell, &owned, curve, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optipart_sfc::Cell3;

    #[test]
    fn from_cells_sorts_and_dedups() {
        let c1 = Cell3::new([0, 0, 0], 2);
        let c2 = Cell3::new([1 << 28, 0, 0], 2);
        let t = LinearTree::from_cells(vec![c2, c1, c2], Curve::Morton);
        assert_eq!(t.len(), 2);
        assert!(is_linear(t.leaves()));
    }

    #[test]
    fn overlap_resolution_keeps_finest() {
        let coarse = Cell3::new([0, 0, 0], 1);
        let fine = Cell3::new([0, 0, 0], 3);
        let unrelated = Cell3::new([1 << 29, 1 << 29, 1 << 29], 1);
        for curve in Curve::ALL {
            let t = LinearTree::from_cells(vec![coarse, fine, unrelated], curve);
            assert_eq!(t.len(), 2, "{curve}");
            assert!(t.leaves().iter().any(|kc| kc.cell == fine));
            assert!(!t.leaves().iter().any(|kc| kc.cell == coarse));
        }
    }

    #[test]
    fn root_tree_is_complete() {
        let t: LinearTree<3> = LinearTree::root(Curve::Hilbert);
        assert!(t.is_complete());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn completion_tiles_domain() {
        for curve in Curve::ALL {
            let seed = Cell3::new([0, 0, 0], 4);
            let t = LinearTree::from_cells(vec![seed], curve).completed();
            assert!(t.is_complete(), "{curve}: volume must equal domain");
            assert!(is_linear(t.leaves()));
            assert!(t.leaves().iter().any(|kc| kc.cell == seed));
            // Minimal completion of a single level-4 corner cell:
            // 4 levels × (2^D - 1) siblings + the seed.
            assert_eq!(t.len(), 4 * 7 + 1, "{curve}");
        }
    }

    #[test]
    fn completion_preserves_multiple_seeds() {
        let seeds = vec![
            Cell3::new([0, 0, 0], 3),
            Cell3::new([1 << 29, 1 << 29, 1 << 29], 2),
            Cell3::new([3 << 27, 0, 1 << 28], 5),
        ];
        let t = LinearTree::from_cells(seeds.clone(), Curve::Hilbert).completed();
        assert!(t.is_complete());
        for s in &seeds {
            assert!(
                t.leaves().iter().any(|kc| kc.cell == *s),
                "seed {s:?} missing from completion"
            );
        }
    }

    #[test]
    fn refine_where_targets_region() {
        let t: LinearTree<3> = LinearTree::root(Curve::Hilbert);
        // Refine anything containing the origin to level 5.
        let r = t.refine_where(|c| c.contains_point([0, 0, 0]), 5);
        assert!(r.is_complete());
        let finest = r.leaves().iter().map(|kc| kc.cell.level()).max().unwrap();
        assert_eq!(finest, 5);
        // Leaf at origin has level 5.
        let origin_leaf = r
            .leaves()
            .iter()
            .find(|kc| kc.cell.contains_point([0, 0, 0]))
            .unwrap();
        assert_eq!(origin_leaf.cell.level(), 5);
    }

    #[test]
    fn coarsen_collapses_sibling_groups() {
        let t: LinearTree<3> = LinearTree::root(Curve::Morton);
        let refined = t.refine_where(|c| c.level() < 2, 2); // uniform level 2
        assert_eq!(refined.len(), 64);
        let c1 = refined.coarsened();
        assert_eq!(c1.len(), 8);
        assert!(c1.is_complete());
        let c2 = c1.coarsened();
        assert_eq!(c2.len(), 1);
    }

    #[test]
    fn coarsen_keeps_partial_groups() {
        // Mixed levels: only full sibling groups collapse.
        let t: LinearTree<3> = LinearTree::root(Curve::Morton);
        let r = t
            .refine_where(|c| c.level() < 1, 1)
            .refine_where(|c| c.contains_point([0, 0, 0]) && c.level() < 2, 2);
        // 7 level-1 + 8 level-2 leaves.
        assert_eq!(r.len(), 15);
        let c = r.coarsened();
        // The 8 level-2 siblings collapse; the 7 level-1 cells do not form a
        // complete group (their 8th sibling is the collapsed parent), then
        // the recursion stops after one sweep.
        assert_eq!(c.len(), 8);
        assert!(c.is_complete());
    }

    #[test]
    fn with_curve_preserves_leaves() {
        let t: LinearTree<3> = LinearTree::root(Curve::Morton).refine_where(|c| c.level() < 2, 2);
        let h = t.with_curve(Curve::Hilbert);
        assert_eq!(h.len(), t.len());
        assert!(h.is_complete());
        assert_ne!(
            t.leaves().iter().map(|kc| kc.cell).collect::<Vec<_>>(),
            h.leaves().iter().map(|kc| kc.cell).collect::<Vec<_>>(),
            "orders should differ between curves"
        );
    }

    #[test]
    fn volume_u128_no_saturation() {
        let root = Cell3::root();
        assert_eq!(volume_u128::<3>(&root), domain_volume::<3>());
    }
}
