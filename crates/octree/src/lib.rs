//! # optipart-octree — linear octree substrate
//!
//! The paper partitions *adaptively refined octree meshes*. Mainstream AMR
//! machinery (p4est, Dendro) has no Rust equivalent, so this crate builds the
//! required pieces from scratch:
//!
//! * [`linear`] — operations on **linear octrees** (sorted, non-overlapping
//!   leaf arrays): validation, completion (Sundar et al. 2008 style),
//!   coarsening, predicate-driven refinement.
//! * [`balance`] — 2:1 face-balance enforcement, the invariant real AMR
//!   codes maintain so that each face has at most `2^(D-1)` neighbours.
//! * [`neighbors`] — leaf lookup and face-neighbour enumeration on linear
//!   octrees, the machinery behind ghost-layer construction and the
//!   partition-boundary metrics of Algorithm 2.
//! * [`generate`] — the paper's §4.2 workloads: octrees built from points
//!   drawn from **uniform, normal and log-normal** distributions, plus a
//!   Gaussian-ball adaptive refinement pattern for the FEM example.

pub mod balance;
pub mod generate;
pub mod linear;
pub mod neighbors;

pub use generate::{
    gaussian_ball, sample_points, sample_points_shell, sample_points_skewed, tree_from_points,
    Distribution, MeshParams,
};
pub use linear::LinearTree;

// Property-test suites need the external `proptest` crate, which the
// offline tier-1 build cannot fetch; enable with `--features proptest`
// once a vendored copy is available.
#[cfg(all(test, feature = "proptest"))]
mod proptests;
