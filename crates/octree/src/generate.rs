//! Random AMR mesh generation — the paper's §4.2 workloads.
//!
//! "We tested the performance using randomly generated octrees according to
//! three distributions, uniform, normal, and log-normal. These were
//! generated using the standard c++11 random number generators. … All
//! results presented in this paper are for data generated according to the
//! normal distribution."
//!
//! A mesh is built by sampling points from the chosen distribution and
//! refining every cell holding more than `max_points_per_cell` points — so
//! dense regions get deep refinement and the resulting leaf array is a
//! complete, adaptive linear octree, exactly the input class of the paper's
//! partitioners.

use crate::linear::LinearTree;
use optipart_mpisim::rng::SplitMix64;
use optipart_sfc::{Cell, Curve, Point, MAX_DEPTH};

/// Point distribution for mesh generation (§4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Distribution {
    /// Uniform over the unit cube.
    Uniform,
    /// Normal, mean 0.5, σ 0.15 per axis, clamped to the cube.
    Normal,
    /// Log-normal (µ = −1.5, σ = 0.6) per axis, clamped to the cube —
    /// concentrates points near the origin corner.
    LogNormal,
}

impl Distribution {
    /// All three distributions of §4.2.
    pub const ALL: [Distribution; 3] = [
        Distribution::Uniform,
        Distribution::Normal,
        Distribution::LogNormal,
    ];

    /// Short name for table output.
    pub fn name(self) -> &'static str {
        match self {
            Distribution::Uniform => "uniform",
            Distribution::Normal => "normal",
            Distribution::LogNormal => "lognormal",
        }
    }

    /// Samples one coordinate in `[0, 1)`.
    fn sample_unit(self, rng: &mut SplitMix64) -> f64 {
        match self {
            Distribution::Uniform => rng.next_f64(),
            Distribution::Normal => rng.next_normal(0.5, 0.15).clamp(0.0, 1.0 - f64::EPSILON),
            Distribution::LogNormal => rng
                .next_log_normal(-1.5, 0.6)
                .clamp(0.0, 1.0 - f64::EPSILON),
        }
    }
}

/// Samples `n` lattice points from a distribution.
pub fn sample_points<const D: usize>(dist: Distribution, n: usize, seed: u64) -> Vec<Point<D>> {
    let mut rng = SplitMix64::new(seed);
    let scale = (1u64 << MAX_DEPTH) as f64;
    (0..n)
        .map(|_| {
            let mut p = [0u32; D];
            for c in &mut p {
                *c = (dist.sample_unit(&mut rng) * scale) as u32;
            }
            p
        })
        .collect()
}

/// Samples `n` lattice points concentrated on a thin spherical shell around
/// the domain centre — a surface-concentrated workload (think a shock front
/// or material interface driving the refinement). The resulting octree is
/// deeply refined along a codimension-1 set and coarse everywhere else,
/// which is the adversarial regime for SFC partition boundary surface.
pub fn sample_points_shell<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
    let mut rng = SplitMix64::new(seed);
    let scale = (1u64 << MAX_DEPTH) as f64;
    (0..n)
        .map(|_| {
            // Direction: D standard normals, normalised (re-draw the
            // measure-zero all-zeros vector).
            let mut v = [0.0f64; D];
            let mut norm = 0.0;
            while norm < 1e-12 {
                norm = 0.0;
                for c in &mut v {
                    *c = rng.next_standard_normal();
                    norm += *c * *c;
                }
                norm = norm.sqrt();
            }
            let radius = 0.35 + 0.015 * rng.next_standard_normal();
            let mut p = [0u32; D];
            for (c, dir) in p.iter_mut().zip(&v) {
                let u = (0.5 + radius * dir / norm).clamp(0.0, 1.0 - f64::EPSILON);
                *c = (u * scale) as u32;
            }
            p
        })
        .collect()
}

/// Samples an adversarially skewed cloud: three quarters of the points are
/// crammed into a corner box of side `2^-shift` (forcing deep refinement on
/// one end of the curve) and the last sixth are exact duplicates of earlier
/// points, so partitioners must cope with extreme density contrast and
/// repeated keys at once. `shift` of 4–9 keeps the tree non-degenerate.
pub fn sample_points_skewed<const D: usize>(n: usize, seed: u64, shift: u32) -> Vec<Point<D>> {
    let shift = shift.min(MAX_DEPTH as u32);
    let side = 1u64 << (MAX_DEPTH as u32 - shift);
    let mut rng = SplitMix64::new(seed);
    let mut pts: Vec<Point<D>> = (0..n)
        .map(|i| {
            let mut p = [0u32; D];
            for c in &mut p {
                *c = if i % 4 == 3 {
                    // Every fourth point is uniform background.
                    (rng.next_f64() * (1u64 << MAX_DEPTH) as f64) as u32
                } else {
                    rng.next_below(side) as u32
                };
            }
            p
        })
        .collect();
    // Overwrite the tail with exact duplicates of random earlier points.
    for i in (n - n / 6)..n {
        pts[i] = pts[rng.next_below((n - n / 6) as u64) as usize];
    }
    pts
}

/// Parameters of a generated mesh.
#[derive(Clone, Copy, Debug)]
pub struct MeshParams {
    /// Point distribution.
    pub distribution: Distribution,
    /// Number of sample points. The leaf count ends up within a small
    /// factor of this (every split produces `2^D` leaves for > 1 point).
    pub num_points: usize,
    /// Refine any cell holding more points than this.
    pub max_points_per_cell: usize,
    /// Refinement cap (≤ [`MAX_DEPTH`]; the paper uses depth 30).
    pub max_level: u8,
    /// RNG seed — all meshes are reproducible.
    pub seed: u64,
}

impl Default for MeshParams {
    fn default() -> Self {
        MeshParams {
            distribution: Distribution::Normal,
            num_points: 10_000,
            max_points_per_cell: 1,
            max_level: MAX_DEPTH,
            seed: 0x0511_2017,
        }
    }
}

impl MeshParams {
    /// Convenience: the paper's default (normal distribution) with a target
    /// point count.
    pub fn normal(num_points: usize, seed: u64) -> Self {
        MeshParams {
            num_points,
            seed,
            ..Default::default()
        }
    }

    /// Builds the adaptive mesh for these parameters on a curve.
    pub fn build<const D: usize>(&self, curve: Curve) -> LinearTree<D> {
        let points = sample_points::<D>(self.distribution, self.num_points, self.seed);
        tree_from_points(&points, self.max_points_per_cell, self.max_level, curve)
    }
}

/// Builds a complete adaptive linear octree by splitting every cell holding
/// more than `max_points_per_cell` of the given points.
pub fn tree_from_points<const D: usize>(
    points: &[Point<D>],
    max_points_per_cell: usize,
    max_level: u8,
    curve: Curve,
) -> LinearTree<D> {
    let max_level = max_level.min(MAX_DEPTH);
    let mut leaves: Vec<Cell<D>> = Vec::new();
    let mut owned: Vec<Point<D>> = points.to_vec();
    split_recursive(
        Cell::root(),
        &mut owned[..],
        max_points_per_cell.max(1),
        max_level,
        &mut leaves,
    );
    LinearTree::from_cells(leaves, curve)
}

fn split_recursive<const D: usize>(
    cell: Cell<D>,
    points: &mut [Point<D>],
    cap: usize,
    max_level: u8,
    out: &mut Vec<Cell<D>>,
) {
    if points.len() <= cap || cell.level() >= max_level {
        out.push(cell);
        return;
    }
    // Partition points by child (coordinate-order digit at this level).
    let nc = 1usize << D;
    let level = cell.level();
    let digit = |p: &Point<D>| -> usize {
        let bit = MAX_DEPTH - 1 - level;
        let mut d = 0usize;
        for (i, &c) in p.iter().enumerate() {
            d |= (((c >> bit) & 1) as usize) << i;
        }
        d
    };
    let mut counts = vec![0usize; nc];
    for p in points.iter() {
        counts[digit(p)] += 1;
    }
    let mut offsets = vec![0usize; nc + 1];
    for i in 0..nc {
        offsets[i + 1] = offsets[i] + counts[i];
    }
    // In-place bucket permutation (cycle-following American-flag style is
    // overkill here; a scratch buffer is clearer and the generator is not
    // the measured hot path).
    let mut scratch = points.to_vec();
    let mut cursor = offsets.clone();
    for p in points.iter() {
        let d = digit(p);
        scratch[cursor[d]] = *p;
        cursor[d] += 1;
    }
    points.copy_from_slice(&scratch);
    for i in 0..nc {
        let child = cell.child(i);
        split_recursive(
            child,
            &mut points[offsets[i]..offsets[i + 1]],
            cap,
            max_level,
            out,
        );
    }
}

/// A Gaussian-ball adaptive mesh: refinement concentrated around a spherical
/// shell of radius `r` centred in the domain — the classic AMR test problem
/// used for the Poisson example.
pub fn gaussian_ball<const D: usize>(max_level: u8, curve: Curve) -> LinearTree<D> {
    let center = [0.5f64; D];
    let radius = 0.3f64;
    LinearTree::root(curve).refine_where(
        |c: &Cell<D>| {
            // Refine cells whose bounding sphere intersects the shell.
            let cc = c.center_unit();
            let dist: f64 = (0..D)
                .map(|d| (cc[d] - center[d]).powi(2))
                .sum::<f64>()
                .sqrt();
            let half_diag = (D as f64).sqrt() * 0.5 * c.side() as f64 / (1u64 << MAX_DEPTH) as f64;
            (dist - radius).abs() <= half_diag * 1.5
        },
        max_level,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_trees_are_complete_and_linear() {
        for dist in Distribution::ALL {
            for curve in Curve::ALL {
                let params = MeshParams {
                    distribution: dist,
                    num_points: 500,
                    max_points_per_cell: 1,
                    max_level: 12,
                    seed: 7,
                };
                let t: LinearTree<3> = params.build(curve);
                assert!(t.is_complete(), "{} {curve}", dist.name());
                assert!(crate::linear::is_linear(t.leaves()));
                assert!(t.len() >= 500 / 8, "leaf count too small: {}", t.len());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let params = MeshParams::normal(300, 42);
        let a: LinearTree<3> = params.build(Curve::Hilbert);
        let b: LinearTree<3> = params.build(Curve::Hilbert);
        assert_eq!(a.leaves().len(), b.leaves().len());
        assert!(a
            .leaves()
            .iter()
            .zip(b.leaves())
            .all(|(x, y)| x.cell == y.cell));
    }

    #[test]
    fn different_seeds_give_different_meshes() {
        let a: LinearTree<3> = MeshParams::normal(300, 1).build(Curve::Hilbert);
        let b: LinearTree<3> = MeshParams::normal(300, 2).build(Curve::Hilbert);
        let cells_a: Vec<_> = a.leaves().iter().map(|kc| kc.cell).collect();
        let cells_b: Vec<_> = b.leaves().iter().map(|kc| kc.cell).collect();
        assert_ne!(cells_a, cells_b);
    }

    #[test]
    fn normal_meshes_are_adaptive() {
        // Normal concentration ⇒ a wide spread of leaf levels.
        let t: LinearTree<3> = MeshParams::normal(2_000, 9).build(Curve::Morton);
        let min = t.leaves().iter().map(|kc| kc.cell.level()).min().unwrap();
        let max = t.leaves().iter().map(|kc| kc.cell.level()).max().unwrap();
        assert!(max - min >= 2, "levels {min}..{max} not adaptive");
    }

    #[test]
    fn lognormal_skews_towards_origin() {
        let pts = sample_points::<3>(Distribution::LogNormal, 2_000, 3);
        let half = 1u32 << (MAX_DEPTH - 1);
        let near_origin = pts.iter().filter(|p| p.iter().all(|&c| c < half)).count();
        assert!(
            near_origin > pts.len() / 2,
            "lognormal should concentrate near origin: {near_origin}/2000"
        );
    }

    #[test]
    fn max_level_is_respected() {
        let params = MeshParams {
            num_points: 5_000,
            max_level: 4,
            max_points_per_cell: 1,
            ..Default::default()
        };
        let t: LinearTree<3> = params.build(Curve::Hilbert);
        assert!(t.leaves().iter().all(|kc| kc.cell.level() <= 4));
        assert!(t.is_complete());
    }

    #[test]
    fn gaussian_ball_refines_shell_only() {
        let t: LinearTree<3> = gaussian_ball(5, Curve::Hilbert);
        assert!(t.is_complete());
        let max = t.leaves().iter().map(|kc| kc.cell.level()).max().unwrap();
        let min = t.leaves().iter().map(|kc| kc.cell.level()).min().unwrap();
        assert_eq!(max, 5);
        assert!(min <= 2, "far-field cells should stay coarse, min {min}");
    }

    #[test]
    fn points_are_in_domain() {
        for dist in Distribution::ALL {
            for p in sample_points::<2>(dist, 500, 11) {
                assert!(p.iter().all(|&c| c < (1 << MAX_DEPTH)));
            }
        }
    }
}
