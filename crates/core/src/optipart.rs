//! OptiPart — Algorithm 3 of the paper.
//!
//! Distributed TreeSort whose stopping rule is the performance model:
//! starting from the loosest admissible tolerance (`max_tolerance`), the
//! search descends a tolerance ladder one rung at a time, refining the
//! shared splitter state to each rung and accepting the step only if the
//! predicted runtime of the induced partition (Algorithm 2 / Eq. 3) does
//! not get worse. "OptiPart starts from a higher tolerance and
//! progressively decreases this, i.e. … it approaches the optimum from the
//! right" (Fig. 10) — and stops exactly where predicted time turns upward,
//! without the user guessing a tolerance.

use crate::partition::{
    exchange_and_sort, PartitionOutcome, PartitionReport, SplitterSearch, PHASE_REFINE,
    PHASE_SPLITTER,
};
use crate::quality::{partition_quality, Quality};
use optipart_mpisim::{AllToAllAlgo, DistVec, Engine};
use optipart_sfc::{Curve, KeyedCell, MAX_DEPTH};

/// Options for OptiPart.
#[derive(Clone, Copy, Debug)]
pub struct OptiPartOptions {
    /// Curve the elements were keyed with (needed to key neighbour probes in
    /// the quality pass).
    pub curve: Curve,
    /// Staged splitter selection cap (Eq. 2's `k`); `None` = unlimited.
    pub max_split_per_round: Option<usize>,
    /// All-to-all schedule for the final exchange.
    pub alltoall: AllToAllAlgo,
    /// Refinement depth cap.
    pub max_level: u8,
    /// Ceiling on the accepted load tolerance: refinement continues (even
    /// against the model's advice) while any target is farther than this
    /// from its boundary. The paper's sweeps stop at 0.7; so do we.
    pub max_tolerance: f64,
    /// Extend Eq. (3) with a per-message latency term `ts·Mmax`
    /// ([`Quality::tp_with_latency`]) — the model refinement the paper's
    /// future work proposes. Off by default (paper-faithful Eq. 3).
    pub latency_aware: bool,
    /// Tolerance-ladder rungs allowed past the last improvement before
    /// stopping (plateau robustness for the greedy stopping rule).
    pub patience: usize,
    /// Amortise the *measured* cost of the tolerance search over this many
    /// application iterations: a finer candidate is accepted only if its
    /// nominal Eq. (3) gain, multiplied by the iteration count, exceeds the
    /// virtual time actually spent searching for it (refinement rounds +
    /// quality evaluations) since the last accepted candidate.
    ///
    /// Measured cost is read off the engine's virtual clocks, so injected
    /// faults participate: on a machine with stragglers the search phases
    /// genuinely cost more, and OptiPart correctly settles for a coarser
    /// (or equal) tolerance instead of chasing refinements whose search
    /// cost the perturbed machine can no longer recoup. `None` (default)
    /// reproduces the paper's model-only stopping rule.
    pub amortize_over: Option<usize>,
}

/// Step between rungs of the flexible-tolerance ladder Algorithm 3
/// descends — the resolution of the paper's Fig. 10 tolerance axis.
const TOLERANCE_STEP: f64 = 0.1;

impl Default for OptiPartOptions {
    fn default() -> Self {
        OptiPartOptions {
            curve: Curve::Hilbert,
            max_split_per_round: None,
            alltoall: AllToAllAlgo::Staged,
            max_level: MAX_DEPTH,
            max_tolerance: 0.7,
            latency_aware: false,
            patience: 3,
            amortize_over: None,
        }
    }
}

impl OptiPartOptions {
    /// Options for a given curve, defaults otherwise.
    pub fn for_curve(curve: Curve) -> Self {
        OptiPartOptions {
            curve,
            ..Default::default()
        }
    }
}

/// Architecture- and application-aware partitioning (Algorithm 3).
///
/// The engine's [`optipart_machine::PerfModel`] supplies `tc`, `tw` and `α`
/// — change the machine or the application model and the *same data*
/// partitions differently (the paper's central point).
pub fn optipart<const D: usize>(
    engine: &mut Engine,
    mut dist: DistVec<KeyedCell<D>>,
    opts: OptiPartOptions,
) -> PartitionOutcome<D> {
    let p = engine.p();
    let (search, splitters, achieved, quality) = engine.phase(PHASE_SPLITTER, |engine| {
        let mut search = SplitterSearch::new(engine, &dist);
        let (mut splitters, mut achieved) = search.choose_splitters(p);
        if p == 1 {
            let q = Quality {
                wmax: search.n,
                cmax: 0,
                mmax: 0,
                tp: engine.perf().predict(search.n, 0),
            };
            return (search, splitters, achieved, q);
        }

        let ts = engine.perf().machine.ts;
        let score = |q: &Quality| {
            if opts.latency_aware {
                q.tp_with_latency(ts)
            } else {
                q.tp
            }
        };

        // Lines 3–21: walk the flexible tolerance down a ladder from
        // `max_tolerance` to exact balance in the paper's Fig. 10 grid
        // resolution, refining the shared search state to each rung and
        // scoring the rung's candidate with Algorithm 2. A bucket that
        // violates a loose tolerance also violates every tighter one, so
        // refinement is monotone along the ladder and the state at each
        // rung matches what a from-scratch TreeSort at that tolerance
        // would reach (exactly, up to the rare global feasibility forcing)
        // — the trajectory therefore visits every partition a brute-force
        // tolerance sweep would score, coarse ones included, instead of
        // leaping from one bucket level to the next. Descent
        // stops once `patience` consecutive rungs failed to improve the
        // prediction — a robust version of Algorithm 3's "proceed while
        // `default ≥ current`" that does not get stuck on model plateaus.
        let mut best: Option<(Vec<optipart_sfc::SfcKey>, f64, Quality)> = None;
        let mut worse = 0usize;
        // Measured virtual time spent searching (refinement + quality
        // evaluations) since the last accepted candidate — what the
        // `amortize_over` acceptance rule weighs the nominal gain against.
        let mut pending_cost = 0.0f64;
        let mut rung = opts.max_tolerance.max(0.0);
        loop {
            // Refine until this rung's tolerance is met everywhere (staged
            // by `max_split_per_round` when a budget is set, Eq. 2).
            let tol_units = rung * (search.n as f64 / p as f64);
            loop {
                let mut split = search.pending_splits(p, tol_units, opts.max_level);
                if split.is_empty() {
                    break;
                }
                if let Some(k) = opts.max_split_per_round {
                    split.truncate((k / (1 << D)).max(1));
                }
                let t_refine = engine.makespan();
                engine.phase(PHASE_REFINE, |e| search.refine_round(e, &mut dist, &split));
                pending_cost += engine.makespan() - t_refine;
            }
            let (cand, cand_tol) = search.choose_splitters(p);
            // `pending_splits` returning empty already guarantees no
            // multi-target buckets and a feasible boundary set.
            let admissible = cand_tol <= opts.max_tolerance;
            if admissible && (cand != splitters || best.is_none()) {
                // Inadmissible candidates can never become the answer, so
                // Algorithm 2 only runs once the tolerance cap is reached.
                let t_eval = engine.makespan();
                let q = partition_quality(engine, &mut dist, &cand, opts.curve);
                pending_cost += engine.makespan() - t_eval;
                let prev_tp = best.as_ref().map(|(_, _, bq)| score(bq));
                let improved = match &best {
                    Some((_, _, bq)) => {
                        let gain = score(bq) - score(&q);
                        match opts.amortize_over {
                            // The gain must pay back the measured search
                            // cost within the amortisation horizon.
                            Some(iters) => gain * iters as f64 > pending_cost,
                            None => gain > 0.0,
                        }
                    }
                    None => true,
                };
                // Trajectory dump for debugging dominance regressions
                // (pairs with the testkit oracle's grid dump).
                if std::env::var_os("OPTIPART_DEBUG").is_some() {
                    eprintln!(
                        "probe rung={rung:.2} cand_tol={cand_tol:.4} tp={:.6e} buckets={} improved={improved}",
                        score(&q),
                        search.buckets.len()
                    );
                }
                engine.trace_decision(
                    "optipart.probe",
                    &[
                        ("tp_candidate", score(&q)),
                        ("tp_best", prev_tp.unwrap_or(score(&q))),
                        ("tolerance", cand_tol),
                        ("search_cost_s", pending_cost),
                        ("accepted", if improved { 1.0 } else { 0.0 }),
                    ],
                );
                if improved {
                    best = Some((cand.clone(), cand_tol, q));
                    worse = 0;
                    pending_cost = 0.0;
                } else {
                    worse += 1;
                }
                splitters = cand;
                achieved = cand_tol;
            }
            if best.is_some() && worse > opts.patience {
                break;
            }
            if rung == 0.0 {
                break; // bottom of the ladder — perfectly balanced
            }
            rung = (rung - TOLERANCE_STEP).max(0.0);
        }
        let (splitters, achieved, current) = match best {
            Some(b) => b,
            None => {
                // No admissible candidate ever appeared (tiny inputs): take
                // the final, fully refined splitters.
                let q = partition_quality(engine, &mut dist, &splitters, opts.curve);
                (splitters, achieved, q)
            }
        };
        engine.trace_decision(
            "optipart.accept",
            &[("tp", current.tp), ("tolerance", achieved)],
        );
        (search, splitters, achieved, current)
    });

    // Line 22–23: staged all-to-all + local TreeSort.
    let out = exchange_and_sort(engine, dist, &splitters, opts.alltoall);

    let counts: Vec<u64> = out.counts().iter().map(|&c| c as u64).collect();
    let lambda = out.load_imbalance();
    let wmax = out.wmax() as u64;
    PartitionOutcome {
        dist: out,
        splitters,
        report: PartitionReport {
            rounds: search.rounds,
            splitter_level: search.max_level(),
            achieved_tolerance: achieved,
            counts,
            lambda,
            wmax,
            cmax: quality.cmax,
            predicted_tp: quality.tp,
        },
    }
}

/// Shrink-recovery repartitioning: runs OptiPart over the engine's current
/// (post-[`Engine::shrink_after_death`]) survivor set from a globally sorted
/// cell list — typically the restored checkpoint state.
///
/// The cells are block-distributed over the `p − 1` survivors first, then
/// [`optipart`] rebalances them under the machine model exactly as at
/// startup: the same machine-aware Eq. (3) search, now sized to the
/// survivor machine (which may be heterogeneous if the fault plan also
/// straggles ranks). All redistribution traffic is charged to the clocks
/// and attributed to the usual partition phases.
pub fn optipart_survivors<const D: usize>(
    engine: &mut Engine,
    cells: &[KeyedCell<D>],
    opts: OptiPartOptions,
) -> PartitionOutcome<D> {
    debug_assert!(
        cells.windows(2).all(|w| w[0].key <= w[1].key),
        "optipart_survivors expects globally sorted cells"
    );
    let dist = DistVec::from_global(cells, engine.p());
    optipart(engine, dist, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{distribute_tree, treesort_partition, PartitionOptions};
    use optipart_machine::{AppModel, MachineModel, PerfModel};
    use optipart_octree::MeshParams;

    fn engine_on(machine: MachineModel, p: usize) -> Engine {
        Engine::new(p, PerfModel::new(machine, AppModel::laplacian_matvec()))
    }

    #[test]
    fn optipart_keeps_all_elements_in_order() {
        let tree = MeshParams::normal(3000, 31).build::<3>(Curve::Hilbert);
        let mut e = engine_on(MachineModel::cloudlab_wisconsin(), 8);
        let out = optipart(
            &mut e,
            distribute_tree(&tree, 8),
            OptiPartOptions::default(),
        );
        let mut expected: Vec<KeyedCell<3>> = tree.leaves().to_vec();
        expected.sort_unstable();
        assert_eq!(out.dist.concat(), expected);
    }

    #[test]
    fn optipart_never_beats_model_of_exact_partition_on_cmax() {
        // OptiPart's partition has Cmax ≤ the exact partition's Cmax (it only
        // stops refining when further balance would raise predicted time).
        let tree = MeshParams::normal(6000, 37).build::<3>(Curve::Hilbert);
        let p = 16;
        let mut e1 = engine_on(MachineModel::cloudlab_wisconsin(), p);
        let opti = optipart(
            &mut e1,
            distribute_tree(&tree, p),
            OptiPartOptions::default(),
        );
        let mut e2 = engine_on(MachineModel::cloudlab_wisconsin(), p);
        let exact = treesort_partition(
            &mut e2,
            distribute_tree(&tree, p),
            PartitionOptions::exact(),
        );
        let mut e3 = engine_on(MachineModel::cloudlab_wisconsin(), p);
        let mut d = distribute_tree(&tree, p);
        let q_exact = partition_quality(&mut e3, &mut d, &exact.splitters, Curve::Hilbert);
        assert!(
            opti.report.cmax <= q_exact.cmax,
            "optipart cmax {} vs exact cmax {}",
            opti.report.cmax,
            q_exact.cmax
        );
        // And its predicted time is no worse.
        assert!(opti.report.predicted_tp <= q_exact.tp + 1e-12);
    }

    #[test]
    fn communication_heavy_machine_accepts_more_imbalance() {
        // Architecture-awareness: on the ethernet cluster (huge tw/tc) the
        // chosen tolerance should be at least that of Titan (cheap network).
        let tree = MeshParams::normal(6000, 41).build::<3>(Curve::Hilbert);
        let p = 16;
        let mut slow_net = engine_on(MachineModel::cloudlab_wisconsin(), p);
        let loose = optipart(
            &mut slow_net,
            distribute_tree(&tree, p),
            OptiPartOptions::default(),
        );
        let mut fast_net = engine_on(MachineModel::titan(), p);
        let tight = optipart(
            &mut fast_net,
            distribute_tree(&tree, p),
            OptiPartOptions::default(),
        );
        assert!(
            loose.report.achieved_tolerance >= tight.report.achieved_tolerance - 1e-9,
            "wisconsin tol {} should be ≥ titan tol {}",
            loose.report.achieved_tolerance,
            tight.report.achieved_tolerance
        );
    }

    #[test]
    fn application_awareness_changes_partition() {
        // Footnote 1: Poisson vs wave on the same mesh — a lower α makes
        // communication relatively more expensive, so the wave partition
        // tolerates at least as much imbalance.
        let tree = MeshParams::normal(6000, 43).build::<3>(Curve::Hilbert);
        let p = 16;
        let mut e1 = Engine::new(
            p,
            PerfModel::new(
                MachineModel::cloudlab_wisconsin(),
                AppModel::laplacian_matvec(),
            ),
        );
        let poisson = optipart(
            &mut e1,
            distribute_tree(&tree, p),
            OptiPartOptions::default(),
        );
        let mut e2 = Engine::new(
            p,
            PerfModel::new(MachineModel::cloudlab_wisconsin(), AppModel::wave_matvec()),
        );
        let wave = optipart(
            &mut e2,
            distribute_tree(&tree, p),
            OptiPartOptions::default(),
        );
        assert!(
            wave.report.achieved_tolerance >= poisson.report.achieved_tolerance - 1e-9,
            "wave tol {} vs poisson tol {}",
            wave.report.achieved_tolerance,
            poisson.report.achieved_tolerance
        );
    }

    #[test]
    fn optipart_single_rank() {
        let tree = MeshParams::normal(500, 47).build::<3>(Curve::Morton);
        let mut e = engine_on(MachineModel::titan(), 1);
        let out = optipart(
            &mut e,
            distribute_tree(&tree, 1),
            OptiPartOptions::for_curve(Curve::Morton),
        );
        assert_eq!(out.dist.total_len(), tree.len());
        assert!(out.splitters.is_empty());
    }

    #[test]
    fn morton_and_hilbert_both_supported() {
        for curve in Curve::ALL {
            let tree = MeshParams::normal(2000, 53).build::<3>(curve);
            let mut e = engine_on(MachineModel::cloudlab_clemson(), 8);
            let out = optipart(
                &mut e,
                distribute_tree(&tree, 8),
                OptiPartOptions::for_curve(curve),
            );
            assert_eq!(out.dist.total_len(), tree.len(), "{curve}");
            assert!(out.report.predicted_tp > 0.0);
        }
    }
}
