//! OptiPart — Algorithm 3 of the paper.
//!
//! Distributed TreeSort whose stopping rule is the performance model:
//! starting from the loosest admissible tolerance (`max_tolerance`), the
//! search descends a tolerance ladder one rung at a time, refining the
//! shared splitter state to each rung and accepting the step only if the
//! predicted runtime of the induced partition (Algorithm 2 / Eq. 3) does
//! not get worse. "OptiPart starts from a higher tolerance and
//! progressively decreases this, i.e. … it approaches the optimum from the
//! right" (Fig. 10) — and stops exactly where predicted time turns upward,
//! without the user guessing a tolerance.

//!
//! # Warm start across AMR steps
//!
//! Successive AMR steps differ only near the refinement front, yet the cold
//! ladder re-pays its full search cost every step. [`optipart_with_state`]
//! resumes from a [`PartitionState`] instead:
//!
//! * **exact hit** — the `(mesh signature, machine model, α, options)`
//!   fingerprint matches a cached entry: the ladder is skipped entirely and
//!   the cached splitters drive the (always live) exchange;
//! * **replay** — same configuration, changed mesh: the ladder re-runs, but
//!   child-count queries are served from a `CountTable` built by recounting
//!   the previous run's bucket tiling on the *current* mesh (via
//!   [`crate::treesort::bucket_populations`]' `LevelOffsets` jump tables),
//!   so only buckets under the moved front pay live count passes. Identical
//!   counts imply identical ladder decisions, so the result is bit-identical
//!   to a cold run;
//! * **cold** — no usable entry, a failed payload self-check, or a rank
//!   count changed by shrink recovery: the stale state is dropped and the
//!   cold path runs, byte-for-byte the same as [`optipart`].

use crate::partition::{
    exchange_and_sort, CountTable, PartitionOutcome, PartitionReport, SplitterSearch, PHASE_REFINE,
    PHASE_SPLITTER,
};
use crate::quality::{partition_quality, Quality};
use crate::treesort::bucket_populations;
use optipart_mpisim::{AllToAllAlgo, DistVec, Engine};
use optipart_sfc::{Curve, KeyedCell, SfcKey, MAX_DEPTH};

/// Options for OptiPart.
#[derive(Clone, Copy, Debug)]
pub struct OptiPartOptions {
    /// Curve the elements were keyed with (needed to key neighbour probes in
    /// the quality pass).
    pub curve: Curve,
    /// Staged splitter selection cap (Eq. 2's `k`); `None` = unlimited.
    pub max_split_per_round: Option<usize>,
    /// All-to-all schedule for the final exchange.
    pub alltoall: AllToAllAlgo,
    /// Refinement depth cap.
    pub max_level: u8,
    /// Ceiling on the accepted load tolerance: refinement continues (even
    /// against the model's advice) while any target is farther than this
    /// from its boundary. The paper's sweeps stop at 0.7; so do we.
    pub max_tolerance: f64,
    /// Extend Eq. (3) with a per-message latency term `ts·Mmax`
    /// ([`Quality::tp_with_latency`]) — the model refinement the paper's
    /// future work proposes. Off by default (paper-faithful Eq. 3).
    pub latency_aware: bool,
    /// Tolerance-ladder rungs allowed past the last improvement before
    /// stopping (plateau robustness for the greedy stopping rule).
    pub patience: usize,
    /// Amortise the *measured* cost of the tolerance search over this many
    /// application iterations: a finer candidate is accepted only if its
    /// nominal Eq. (3) gain, multiplied by the iteration count, exceeds the
    /// virtual time actually spent searching for it (refinement rounds +
    /// quality evaluations) since the last accepted candidate.
    ///
    /// Measured cost is read off the engine's virtual clocks, so injected
    /// faults participate: on a machine with stragglers the search phases
    /// genuinely cost more, and OptiPart correctly settles for a coarser
    /// (or equal) tolerance instead of chasing refinements whose search
    /// cost the perturbed machine can no longer recoup. `None` (default)
    /// reproduces the paper's model-only stopping rule.
    pub amortize_over: Option<usize>,
}

/// Step between rungs of the flexible-tolerance ladder Algorithm 3
/// descends — the resolution of the paper's Fig. 10 tolerance axis.
const TOLERANCE_STEP: f64 = 0.1;

impl Default for OptiPartOptions {
    fn default() -> Self {
        OptiPartOptions {
            curve: Curve::Hilbert,
            max_split_per_round: None,
            alltoall: AllToAllAlgo::Hypercube,
            max_level: MAX_DEPTH,
            max_tolerance: 0.7,
            latency_aware: false,
            patience: 3,
            amortize_over: None,
        }
    }
}

impl OptiPartOptions {
    /// Options for a given curve, defaults otherwise.
    pub fn for_curve(curve: Curve) -> Self {
        OptiPartOptions {
            curve,
            ..Default::default()
        }
    }
}

/// Architecture- and application-aware partitioning (Algorithm 3).
///
/// The engine's [`optipart_machine::PerfModel`] supplies `tc`, `tw` and `α`
/// — change the machine or the application model and the *same data*
/// partitions differently (the paper's central point).
pub fn optipart<const D: usize>(
    engine: &mut Engine,
    dist: DistVec<KeyedCell<D>>,
    opts: OptiPartOptions,
) -> PartitionOutcome<D> {
    optipart_run(engine, dist, opts, None).0
}

/// The tolerance-ladder body shared by the cold path and the warm replay.
///
/// With `table = None` this **is** the cold [`optipart`], charge-for-charge
/// and decision-for-decision. With a [`CountTable`] (holding the previous
/// bucket tiling recounted on the current mesh) each refinement round asks
/// the table first and only counts live below its resolution — identical
/// counts, identical trajectory, cheaper clocks. Also returns the final
/// bucket tiling `(path, level, count)` so the caller can cache it.
#[allow(clippy::type_complexity)]
fn optipart_run<const D: usize>(
    engine: &mut Engine,
    mut dist: DistVec<KeyedCell<D>>,
    opts: OptiPartOptions,
    table: Option<&CountTable>,
) -> (PartitionOutcome<D>, Vec<(u128, u8, u64)>) {
    let p = engine.p();
    let (search, splitters, achieved, quality) = engine.phase(PHASE_SPLITTER, |engine| {
        let mut search = SplitterSearch::new(engine, &dist);
        let (mut splitters, mut achieved) = search.choose_splitters(p);
        if p == 1 {
            let q = Quality {
                wmax: search.n,
                cmax: 0,
                cmax_intra: 0,
                c_total: 0,
                c_intra_total: 0,
                mmax: 0,
                tp: engine.perf().predict(search.n, 0),
            };
            return (search, splitters, achieved, q);
        }

        let ts = engine.perf().machine.ts;
        let score = |q: &Quality| {
            if opts.latency_aware {
                q.tp_with_latency(ts)
            } else {
                q.tp
            }
        };

        // Lines 3–21: walk the flexible tolerance down a ladder from
        // `max_tolerance` to exact balance in the paper's Fig. 10 grid
        // resolution, refining the shared search state to each rung and
        // scoring the rung's candidate with Algorithm 2. A bucket that
        // violates a loose tolerance also violates every tighter one, so
        // refinement is monotone along the ladder and the state at each
        // rung matches what a from-scratch TreeSort at that tolerance
        // would reach (exactly, up to the rare global feasibility forcing)
        // — the trajectory therefore visits every partition a brute-force
        // tolerance sweep would score, coarse ones included, instead of
        // leaping from one bucket level to the next. Descent
        // stops once `patience` consecutive rungs failed to improve the
        // prediction — a robust version of Algorithm 3's "proceed while
        // `default ≥ current`" that does not get stuck on model plateaus.
        let mut best: Option<(Vec<optipart_sfc::SfcKey>, f64, Quality)> = None;
        let mut worse = 0usize;
        // Measured virtual time spent searching (refinement + quality
        // evaluations) since the last accepted candidate — what the
        // `amortize_over` acceptance rule weighs the nominal gain against.
        let mut pending_cost = 0.0f64;
        let mut rung = opts.max_tolerance.max(0.0);
        loop {
            // Refine until this rung's tolerance is met everywhere (staged
            // by `max_split_per_round` when a budget is set, Eq. 2).
            let tol_units = rung * (search.n as f64 / p as f64);
            loop {
                let mut split = search.pending_splits(p, tol_units, opts.max_level);
                if split.is_empty() {
                    break;
                }
                if let Some(k) = opts.max_split_per_round {
                    split.truncate((k / (1 << D)).max(1));
                }
                let t_refine = engine.makespan();
                engine.phase(PHASE_REFINE, |e| match table {
                    Some(t) => search.refine_round_warm(e, &mut dist, &split, t),
                    None => search.refine_round(e, &mut dist, &split),
                });
                pending_cost += engine.makespan() - t_refine;
            }
            let (cand, cand_tol) = search.choose_splitters(p);
            // `pending_splits` returning empty already guarantees no
            // multi-target buckets and a feasible boundary set.
            let admissible = cand_tol <= opts.max_tolerance;
            if admissible && (cand != splitters || best.is_none()) {
                // Inadmissible candidates can never become the answer, so
                // Algorithm 2 only runs once the tolerance cap is reached.
                let t_eval = engine.makespan();
                let q = partition_quality(engine, &mut dist, &cand, opts.curve);
                pending_cost += engine.makespan() - t_eval;
                let prev_tp = best.as_ref().map(|(_, _, bq)| score(bq));
                let improved = match &best {
                    Some((_, _, bq)) => {
                        let gain = score(bq) - score(&q);
                        match opts.amortize_over {
                            // The gain must pay back the measured search
                            // cost within the amortisation horizon.
                            Some(iters) => gain * iters as f64 > pending_cost,
                            None => gain > 0.0,
                        }
                    }
                    None => true,
                };
                // Trajectory dump for debugging dominance regressions
                // (pairs with the testkit oracle's grid dump).
                if std::env::var_os("OPTIPART_DEBUG").is_some() {
                    eprintln!(
                        "probe rung={rung:.2} cand_tol={cand_tol:.4} tp={:.6e} buckets={} improved={improved}",
                        score(&q),
                        search.buckets.len()
                    );
                }
                engine.trace_decision(
                    "optipart.probe",
                    &[
                        ("tp_candidate", score(&q)),
                        ("tp_best", prev_tp.unwrap_or(score(&q))),
                        ("tolerance", cand_tol),
                        ("search_cost_s", pending_cost),
                        ("accepted", if improved { 1.0 } else { 0.0 }),
                    ],
                );
                if improved {
                    best = Some((cand.clone(), cand_tol, q));
                    worse = 0;
                    pending_cost = 0.0;
                } else {
                    worse += 1;
                }
                splitters = cand;
                achieved = cand_tol;
            }
            if best.is_some() && worse > opts.patience {
                break;
            }
            if rung == 0.0 {
                break; // bottom of the ladder — perfectly balanced
            }
            rung = (rung - TOLERANCE_STEP).max(0.0);
        }
        let (splitters, achieved, current) = match best {
            Some(b) => b,
            None => {
                // No admissible candidate ever appeared (tiny inputs): take
                // the final, fully refined splitters.
                let q = partition_quality(engine, &mut dist, &splitters, opts.curve);
                (splitters, achieved, q)
            }
        };
        engine.trace_decision(
            "optipart.accept",
            &[("tp", current.tp), ("tolerance", achieved)],
        );
        (search, splitters, achieved, current)
    });

    let leaves: Vec<(u128, u8, u64)> = search
        .buckets
        .iter()
        .map(|b| (b.path, b.level, b.count))
        .collect();

    // Line 22–23: staged all-to-all + local TreeSort.
    let out = exchange_and_sort(engine, dist, &splitters, opts.alltoall);

    let counts: Vec<u64> = out.counts().iter().map(|&c| c as u64).collect();
    let lambda = out.load_imbalance();
    let wmax = out.wmax() as u64;
    let outcome = PartitionOutcome {
        dist: out,
        splitters,
        report: PartitionReport {
            rounds: search.rounds,
            splitter_level: search.max_level(),
            achieved_tolerance: achieved,
            counts,
            lambda,
            wmax,
            cmax: quality.cmax,
            predicted_tp: quality.tp,
        },
    };
    (outcome, leaves)
}

/// SplitMix64-style finaliser used by the mesh signature and fingerprints.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-independent global mesh signature plus the global element count.
///
/// Each element contributes `mix64` of its key, folded with a wrapping sum
/// — commutative, so a permuted or differently-distributed copy of the same
/// mesh fingerprints identically, and (unlike XOR) duplicated elements do
/// not cancel out. One pass over the local data plus one scalar all-reduce;
/// a real MPI implementation folds the signature word in the same
/// reduction (wrapping sum == `MPI_SUM` on `uint64`), so only the count
/// all-reduce is charged to the clocks here.
fn mesh_signature<const D: usize>(
    engine: &mut Engine,
    dist: &mut DistVec<KeyedCell<D>>,
) -> (u64, u64) {
    let elem_bytes = std::mem::size_of::<KeyedCell<D>>() as f64;
    let local: Vec<(u64, u64)> = engine.compute_map(dist, |_r, buf| {
        let mut sig = 0u64;
        for kc in buf.iter() {
            let path = kc.key.path();
            let h = (path as u64)
                ^ ((path >> 64) as u64).rotate_left(23)
                ^ ((kc.key.level() as u64) << 56);
            sig = sig.wrapping_add(mix64(h));
        }
        (buf.len() as f64 * elem_bytes, (sig, buf.len() as u64))
    });
    let counts: Vec<u64> = local.iter().map(|&(_, c)| c).collect();
    let n = engine.allreduce_sum_u64(&counts);
    let sig = local.iter().fold(0u64, |acc, &(s, _)| acc.wrapping_add(s));
    (sig, n)
}

/// What must match for a cached entry to be trusted: the mesh (signature +
/// count), the rank count, the machine/application model, and every option
/// that steers the ladder. The all-to-all schedule is deliberately left out
/// — it only shapes the exchange, which always runs live.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Fingerprint {
    mesh_sig: u64,
    n: u64,
    p: u64,
    model_sig: u64,
    opts_sig: u64,
}

impl Fingerprint {
    /// Same machine, application, rank count and ladder options — the
    /// precondition for replaying the ladder on a *different* mesh.
    fn config_matches(&self, other: &Fingerprint) -> bool {
        self.p == other.p && self.model_sig == other.model_sig && self.opts_sig == other.opts_sig
    }
}

fn fingerprint(engine: &Engine, mesh_sig: u64, n: u64, opts: &OptiPartOptions) -> Fingerprint {
    let perf = engine.perf();
    let mut model = 0u64;
    for bits in [
        perf.machine.tc.to_bits(),
        perf.machine.ts.to_bits(),
        perf.machine.tw.to_bits(),
        perf.machine.ranks_per_node as u64,
        perf.app.alpha.to_bits(),
        perf.app.elem_bytes.to_bits(),
    ] {
        model = mix64(model ^ bits);
    }
    // A hierarchy changes the quality scores (and thus possibly the ladder
    // trajectory), so it must invalidate cached entries. A degenerate
    // hierarchy fingerprints differently from None by construction (the
    // presence marker) even though its results are bit-identical — cheaper
    // one cold run than a correctness argument in the cache key.
    match &perf.machine.hierarchy {
        Some(h) => {
            for bits in [
                1u64,
                h.ts_intra.to_bits(),
                h.tw_intra.to_bits(),
                h.nic_intra_j_per_byte.to_bits(),
            ] {
                model = mix64(model ^ bits);
            }
        }
        None => model = mix64(model),
    }
    let mut o = 0u64;
    for v in [
        opts.curve as u64,
        opts.max_split_per_round.map_or(u64::MAX, |k| k as u64),
        opts.max_level as u64,
        opts.max_tolerance.to_bits(),
        opts.latency_aware as u64,
        opts.patience as u64,
    ] {
        o = mix64(o ^ v);
    }
    Fingerprint {
        mesh_sig,
        n,
        p: engine.p() as u64,
        model_sig: model,
        opts_sig: o,
    }
}

/// One cached partition: the fingerprint it was computed under, everything
/// needed to reproduce the cold report on an exact hit, the final bucket
/// tiling (the replay's [`CountTable`] skeleton), and a payload self-check
/// signature so corruption is detected rather than trusted.
#[derive(Clone, Debug)]
struct StateEntry {
    fp: Fingerprint,
    splitters: Vec<SfcKey>,
    achieved: f64,
    rounds: usize,
    splitter_level: u8,
    cmax: u64,
    predicted_tp: f64,
    leaves: Vec<(u128, u8, u64)>,
    payload_sig: u64,
}

impl StateEntry {
    fn compute_payload_sig(&self) -> u64 {
        let mut h = mix64(self.fp.mesh_sig ^ self.fp.opts_sig.rotate_left(32));
        for s in &self.splitters {
            h = mix64(h ^ (s.path() as u64));
            h = mix64(h ^ ((s.path() >> 64) as u64) ^ ((s.level() as u64) << 32));
        }
        for &(path, level, count) in &self.leaves {
            h = mix64(h ^ (path as u64) ^ ((path >> 64) as u64).rotate_left(17));
            h = mix64(h ^ count ^ ((level as u64) << 48));
        }
        h = mix64(h ^ self.achieved.to_bits());
        h = mix64(h ^ self.rounds as u64);
        h = mix64(h ^ self.splitter_level as u64);
        h = mix64(h ^ self.cmax);
        h = mix64(h ^ self.predicted_tp.to_bits());
        h
    }

    fn payload_ok(&self) -> bool {
        self.payload_sig == self.compute_payload_sig()
    }
}

fn entry_from<const D: usize>(
    fp: Fingerprint,
    outcome: &PartitionOutcome<D>,
    leaves: Vec<(u128, u8, u64)>,
) -> StateEntry {
    let mut e = StateEntry {
        fp,
        splitters: outcome.splitters.clone(),
        achieved: outcome.report.achieved_tolerance,
        rounds: outcome.report.rounds,
        splitter_level: outcome.report.splitter_level,
        cmax: outcome.report.cmax,
        predicted_tp: outcome.report.predicted_tp,
        leaves,
        payload_sig: 0,
    };
    e.payload_sig = e.compute_payload_sig();
    e
}

/// Warm/cold decision counters accumulated by a [`PartitionState`] over its
/// lifetime — surfaced on the AMR reports so tests (and the trace) can pin
/// exactly which path every step took.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WarmStats {
    /// Exact fingerprint hits — the ladder was skipped entirely.
    pub hits: u64,
    /// Same-configuration replays on a changed mesh (table-accelerated).
    pub replays: u64,
    /// Cold runs (no usable entry, or warm-start not applicable).
    pub colds: u64,
    /// Entries dropped by the payload self-check (corruption detected).
    pub rejected: u64,
    /// Entries dropped because the rank count changed (shrink recovery).
    pub invalidated: u64,
}

/// Default number of most recent entries kept per state; old meshes fall
/// off the end. Sized to comfortably cover the repeating scenario sets of
/// a soak or service loop (the bench kernel cycles 10 meshes). Tunable per
/// state via [`PartitionState::with_cap`] (exposed through
/// `AmrConfig::state_cap` and the CLI/server `--state-cap` flag).
pub const DEFAULT_STATE_CAP: usize = 16;

/// Reusable warm-start state for [`optipart_with_state`]: a small FIFO of
/// fingerprinted past partitions. Cheap to clone, checkpointable (see the
/// `Replicated` wrapper in `optipart-mpisim`), and safe by construction —
/// a stale, foreign or corrupted state can cost at most one cold run.
#[derive(Clone, Debug)]
pub struct PartitionState {
    entries: Vec<StateEntry>,
    /// LRU bound on `entries` (≥ 1).
    cap: usize,
    /// Decision counters (monotone; survive [`PartitionState::clear`]).
    pub stats: WarmStats,
}

impl Default for PartitionState {
    fn default() -> Self {
        Self::with_cap(DEFAULT_STATE_CAP)
    }
}

impl PartitionState {
    pub fn new() -> Self {
        Self::default()
    }

    /// A state bounded to `cap` cached partitions (clamped to ≥ 1). Sizing
    /// is per worker/loop: a service worker whose shard cycles through `k`
    /// distinct scenarios wants `cap ≥ k` to stay on the exact-hit path.
    pub fn with_cap(cap: usize) -> Self {
        Self {
            entries: Vec::new(),
            cap: cap.max(1),
            stats: WarmStats::default(),
        }
    }

    /// The LRU bound this state was built with.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Drops every cached entry (the counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of cached partitions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate in-memory footprint, for checkpoint byte accounting.
    pub fn footprint_bytes(&self) -> u64 {
        let per_entry: u64 = self
            .entries
            .iter()
            .map(|e| {
                (std::mem::size_of::<StateEntry>()
                    + e.splitters.len() * std::mem::size_of::<SfcKey>()
                    + e.leaves.len() * std::mem::size_of::<(u128, u8, u64)>())
                    as u64
            })
            .sum();
        std::mem::size_of::<Self>() as u64 + per_entry
    }

    /// Test hook: silently corrupt the most recent entry **without**
    /// updating its payload signature — the tamper the self-check must
    /// catch. Returns false when there is nothing to corrupt.
    pub fn corrupt_for_test(&mut self) -> bool {
        match self.entries.last_mut() {
            Some(e) => {
                match e.splitters.first_mut() {
                    Some(s) => *s = SfcKey::from_parts(s.path() ^ 1, s.level()),
                    None => e.cmax ^= 1,
                }
                true
            }
            None => false,
        }
    }

    /// Drops entries fingerprinted under a different rank count — the
    /// shrink-recovery invalidation. Returns how many were dropped.
    fn prune_stale(&mut self, p: usize) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.fp.p == p as u64);
        before - self.entries.len()
    }

    /// Inserts (or refreshes) an entry, evicting the oldest past the cap.
    fn store(&mut self, entry: StateEntry) {
        self.entries.retain(|e| e.fp != entry.fp);
        self.entries.push(entry);
        if self.entries.len() > self.cap {
            let excess = self.entries.len() - self.cap;
            self.entries.drain(..excess);
        }
    }
}

/// Recounts a previous run's bucket tiling on the current mesh: one local
/// pass over the sorted data (via the `LevelOffsets` jump tables) plus one
/// vector all-reduce. Returns the resulting [`CountTable`] and the number
/// of leaves whose population changed since the cached run — the size of
/// the refinement-front diff.
fn recount_table<const D: usize>(
    engine: &mut Engine,
    dist: &mut DistVec<KeyedCell<D>>,
    prev: &[(u128, u8, u64)],
) -> (CountTable, usize) {
    let ranges: Vec<(u128, u8)> = prev.iter().map(|&(path, level, _)| (path, level)).collect();
    let elem_bytes = std::mem::size_of::<KeyedCell<D>>() as f64;
    let local: Vec<Vec<u64>> = engine.compute_map(dist, |_r, buf| {
        (
            buf.len() as f64 * elem_bytes,
            bucket_populations::<D>(buf, &ranges),
        )
    });
    let counts = engine.allreduce_sum_vec_u64(&local);
    let changed = prev
        .iter()
        .zip(&counts)
        .filter(|&(&(_, _, old), &new)| old != new)
        .count();
    let leaves = prev
        .iter()
        .zip(&counts)
        .map(|(&(path, level, _), &c)| (path, level, c))
        .collect();
    (CountTable { leaves }, changed)
}

/// Emits the per-call warm-start decision event (mirrored by `stats`).
fn trace_warm(
    engine: &mut Engine,
    hit: bool,
    replay: bool,
    rejected: bool,
    changed: usize,
    pruned: usize,
) {
    engine.trace_decision(
        "optipart.warm",
        &[
            ("hit", if hit { 1.0 } else { 0.0 }),
            ("replay", if replay { 1.0 } else { 0.0 }),
            ("rejected", if rejected { 1.0 } else { 0.0 }),
            ("changed_buckets", changed as f64),
            ("invalidated", pruned as f64),
        ],
    );
}

/// [`optipart`] resuming from (and updating) a [`PartitionState`] — the
/// incremental path for multi-step AMR loops. **Bit-identical to the cold
/// run in every case**; the state only changes what the search costs:
///
/// * exact fingerprint hit → skip the ladder, reuse the cached splitters
///   (the exchange still runs live on the actual data);
/// * same config on a changed mesh → replay the ladder against a
///   `CountTable` recounted from the cached bucket tiling, paying live
///   count passes only under the moved refinement front;
/// * anything else (stale fingerprint, failed payload self-check, rank
///   count changed by a shrink, `amortize_over` active) → cold run.
///
/// `amortize_over` couples ladder decisions to the engine's *measured*
/// virtual clocks, which a warm replay deliberately does not reproduce —
/// so that mode always runs cold rather than risk divergence.
pub fn optipart_with_state<const D: usize>(
    engine: &mut Engine,
    mut dist: DistVec<KeyedCell<D>>,
    opts: OptiPartOptions,
    state: &mut PartitionState,
) -> PartitionOutcome<D> {
    if opts.amortize_over.is_some() {
        state.stats.colds += 1;
        return optipart(engine, dist, opts);
    }
    let pruned = state.prune_stale(engine.p());
    state.stats.invalidated += pruned as u64;
    let (mesh_sig, n) = engine.phase(PHASE_SPLITTER, |e| mesh_signature(e, &mut dist));
    let fp = fingerprint(engine, mesh_sig, n, &opts);

    let mut rejected = false;
    if let Some(i) = state.entries.iter().rposition(|e| e.fp == fp) {
        if state.entries[i].payload_ok() {
            // Exact hit: same mesh, machine, α and options — the cold run
            // is fully determined, so skip the ladder and replay its
            // answer. The exchange still runs live on the actual data,
            // which reproduces counts/λ/Wmax bit-identically.
            state.stats.hits += 1;
            trace_warm(engine, true, false, false, 0, pruned);
            let entry = &state.entries[i];
            let splitters = entry.splitters.clone();
            let (achieved, rounds, splitter_level, cmax, predicted_tp) = (
                entry.achieved,
                entry.rounds,
                entry.splitter_level,
                entry.cmax,
                entry.predicted_tp,
            );
            let out = exchange_and_sort(engine, dist, &splitters, opts.alltoall);
            let counts: Vec<u64> = out.counts().iter().map(|&c| c as u64).collect();
            let lambda = out.load_imbalance();
            let wmax = out.wmax() as u64;
            return PartitionOutcome {
                dist: out,
                splitters,
                report: PartitionReport {
                    rounds,
                    splitter_level,
                    achieved_tolerance: achieved,
                    counts,
                    lambda,
                    wmax,
                    cmax,
                    predicted_tp,
                },
            };
        }
        // Fingerprint matches but the payload self-check fails: the entry
        // was tampered with — drop it and fall through to a cold run.
        state.entries.remove(i);
        state.stats.rejected += 1;
        rejected = true;
    }

    if !rejected {
        if let Some(i) = state.entries.iter().rposition(|e| e.fp.config_matches(&fp)) {
            if state.entries[i].payload_ok() {
                // Same configuration, changed mesh: replay the ladder with
                // counts served from the previous tiling recounted on the
                // current data.
                state.stats.replays += 1;
                let prev = state.entries[i].leaves.clone();
                let (table, changed) =
                    engine.phase(PHASE_REFINE, |e| recount_table(e, &mut dist, &prev));
                trace_warm(engine, false, true, false, changed, pruned);
                let (outcome, leaves) = optipart_run(engine, dist, opts, Some(&table));
                state.store(entry_from(fp, &outcome, leaves));
                return outcome;
            }
            state.entries.remove(i);
            state.stats.rejected += 1;
            rejected = true;
        }
    }

    state.stats.colds += 1;
    trace_warm(engine, false, false, rejected, 0, pruned);
    let (outcome, leaves) = optipart_run(engine, dist, opts, None);
    state.store(entry_from(fp, &outcome, leaves));
    outcome
}

/// Shrink-recovery repartitioning: runs OptiPart over the engine's current
/// (post-[`Engine::shrink_after_death`]) survivor set from a globally sorted
/// cell list — typically the restored checkpoint state.
///
/// The cells are block-distributed over the `p − 1` survivors first, then
/// [`optipart`] rebalances them under the machine model exactly as at
/// startup: the same machine-aware Eq. (3) search, now sized to the
/// survivor machine (which may be heterogeneous if the fault plan also
/// straggles ranks). All redistribution traffic is charged to the clocks
/// and attributed to the usual partition phases.
pub fn optipart_survivors<const D: usize>(
    engine: &mut Engine,
    cells: &[KeyedCell<D>],
    opts: OptiPartOptions,
) -> PartitionOutcome<D> {
    debug_assert!(
        cells.windows(2).all(|w| w[0].key <= w[1].key),
        "optipart_survivors expects globally sorted cells"
    );
    let dist = DistVec::from_global(cells, engine.p());
    optipart(engine, dist, opts)
}

/// [`optipart_survivors`] resuming from a [`PartitionState`]. Entries
/// fingerprinted under the pre-death rank count fail the `p` check and are
/// invalidated (`stats.invalidated`), so a shrink can never replay a
/// partition sized for the dead configuration — the recovery repartition
/// runs cold and re-seeds the state for the survivor machine.
pub fn optipart_survivors_with_state<const D: usize>(
    engine: &mut Engine,
    cells: &[KeyedCell<D>],
    opts: OptiPartOptions,
    state: &mut PartitionState,
) -> PartitionOutcome<D> {
    debug_assert!(
        cells.windows(2).all(|w| w[0].key <= w[1].key),
        "optipart_survivors expects globally sorted cells"
    );
    let dist = DistVec::from_global(cells, engine.p());
    optipart_with_state(engine, dist, opts, state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{distribute_tree, treesort_partition, PartitionOptions};
    use optipart_machine::{AppModel, MachineModel, PerfModel};
    use optipart_octree::MeshParams;

    fn engine_on(machine: MachineModel, p: usize) -> Engine {
        Engine::new(p, PerfModel::new(machine, AppModel::laplacian_matvec()))
    }

    #[test]
    fn optipart_keeps_all_elements_in_order() {
        let tree = MeshParams::normal(3000, 31).build::<3>(Curve::Hilbert);
        let mut e = engine_on(MachineModel::cloudlab_wisconsin(), 8);
        let out = optipart(
            &mut e,
            distribute_tree(&tree, 8),
            OptiPartOptions::default(),
        );
        let mut expected: Vec<KeyedCell<3>> = tree.leaves().to_vec();
        expected.sort_unstable();
        assert_eq!(out.dist.concat(), expected);
    }

    #[test]
    fn optipart_never_beats_model_of_exact_partition_on_cmax() {
        // OptiPart's partition has Cmax ≤ the exact partition's Cmax (it only
        // stops refining when further balance would raise predicted time).
        let tree = MeshParams::normal(6000, 37).build::<3>(Curve::Hilbert);
        let p = 16;
        let mut e1 = engine_on(MachineModel::cloudlab_wisconsin(), p);
        let opti = optipart(
            &mut e1,
            distribute_tree(&tree, p),
            OptiPartOptions::default(),
        );
        let mut e2 = engine_on(MachineModel::cloudlab_wisconsin(), p);
        let exact = treesort_partition(
            &mut e2,
            distribute_tree(&tree, p),
            PartitionOptions::exact(),
        );
        let mut e3 = engine_on(MachineModel::cloudlab_wisconsin(), p);
        let mut d = distribute_tree(&tree, p);
        let q_exact = partition_quality(&mut e3, &mut d, &exact.splitters, Curve::Hilbert);
        assert!(
            opti.report.cmax <= q_exact.cmax,
            "optipart cmax {} vs exact cmax {}",
            opti.report.cmax,
            q_exact.cmax
        );
        // And its predicted time is no worse.
        assert!(opti.report.predicted_tp <= q_exact.tp + 1e-12);
    }

    #[test]
    fn communication_heavy_machine_accepts_more_imbalance() {
        // Architecture-awareness: on the ethernet cluster (huge tw/tc) the
        // chosen tolerance should be at least that of Titan (cheap network).
        let tree = MeshParams::normal(6000, 41).build::<3>(Curve::Hilbert);
        let p = 16;
        let mut slow_net = engine_on(MachineModel::cloudlab_wisconsin(), p);
        let loose = optipart(
            &mut slow_net,
            distribute_tree(&tree, p),
            OptiPartOptions::default(),
        );
        let mut fast_net = engine_on(MachineModel::titan(), p);
        let tight = optipart(
            &mut fast_net,
            distribute_tree(&tree, p),
            OptiPartOptions::default(),
        );
        assert!(
            loose.report.achieved_tolerance >= tight.report.achieved_tolerance - 1e-9,
            "wisconsin tol {} should be ≥ titan tol {}",
            loose.report.achieved_tolerance,
            tight.report.achieved_tolerance
        );
    }

    #[test]
    fn application_awareness_changes_partition() {
        // Footnote 1: Poisson vs wave on the same mesh — a lower α makes
        // communication relatively more expensive, so the wave partition
        // tolerates at least as much imbalance.
        let tree = MeshParams::normal(6000, 43).build::<3>(Curve::Hilbert);
        let p = 16;
        let mut e1 = Engine::new(
            p,
            PerfModel::new(
                MachineModel::cloudlab_wisconsin(),
                AppModel::laplacian_matvec(),
            ),
        );
        let poisson = optipart(
            &mut e1,
            distribute_tree(&tree, p),
            OptiPartOptions::default(),
        );
        let mut e2 = Engine::new(
            p,
            PerfModel::new(MachineModel::cloudlab_wisconsin(), AppModel::wave_matvec()),
        );
        let wave = optipart(
            &mut e2,
            distribute_tree(&tree, p),
            OptiPartOptions::default(),
        );
        assert!(
            wave.report.achieved_tolerance >= poisson.report.achieved_tolerance - 1e-9,
            "wave tol {} vs poisson tol {}",
            wave.report.achieved_tolerance,
            poisson.report.achieved_tolerance
        );
    }

    #[test]
    fn optipart_single_rank() {
        let tree = MeshParams::normal(500, 47).build::<3>(Curve::Morton);
        let mut e = engine_on(MachineModel::titan(), 1);
        let out = optipart(
            &mut e,
            distribute_tree(&tree, 1),
            OptiPartOptions::for_curve(Curve::Morton),
        );
        assert_eq!(out.dist.total_len(), tree.len());
        assert!(out.splitters.is_empty());
    }

    fn assert_outcomes_identical<const D: usize>(a: &PartitionOutcome<D>, b: &PartitionOutcome<D>) {
        assert_eq!(a.splitters, b.splitters, "splitters diverged");
        assert_eq!(
            a.report.achieved_tolerance, b.report.achieved_tolerance,
            "accepted rung diverged"
        );
        assert_eq!(a.report.counts, b.report.counts);
        assert_eq!(a.report.cmax, b.report.cmax);
        assert_eq!(a.report.predicted_tp, b.report.predicted_tp);
        assert_eq!(a.dist.concat(), b.dist.concat(), "partition diverged");
    }

    #[test]
    fn warm_exact_hit_is_bit_identical_and_skips_the_ladder() {
        let tree = MeshParams::normal(3000, 71).build::<3>(Curve::Hilbert);
        let opts = OptiPartOptions::default();
        let mut cold_e = engine_on(MachineModel::cloudlab_wisconsin(), 8);
        let cold = optipart(&mut cold_e, distribute_tree(&tree, 8), opts);

        let mut state = PartitionState::new();
        let mut e1 = engine_on(MachineModel::cloudlab_wisconsin(), 8);
        let first = optipart_with_state(&mut e1, distribute_tree(&tree, 8), opts, &mut state);
        assert_outcomes_identical(&cold, &first);
        assert_eq!(state.stats.colds, 1);

        let mut e2 = engine_on(MachineModel::cloudlab_wisconsin(), 8);
        let second = optipart_with_state(&mut e2, distribute_tree(&tree, 8), opts, &mut state);
        assert_outcomes_identical(&cold, &second);
        assert_eq!(state.stats.hits, 1);
        // The hit must genuinely skip the search: far fewer synchronisation
        // points than the cold run (signature + exchange only).
        assert!(
            e2.sync_points() < cold_e.sync_points() / 2,
            "hit sync points {} vs cold {}",
            e2.sync_points(),
            cold_e.sync_points()
        );
    }

    #[test]
    fn warm_replay_on_changed_mesh_matches_cold() {
        // Prime on one mesh, partition a *different* mesh (same config):
        // the table-served replay must land exactly on the cold answer.
        let opts = OptiPartOptions::default();
        let tree_a = MeshParams::normal(3000, 73).build::<3>(Curve::Hilbert);
        let tree_b = MeshParams::normal(3400, 79).build::<3>(Curve::Hilbert);

        let mut state = PartitionState::new();
        let mut e1 = engine_on(MachineModel::cloudlab_wisconsin(), 8);
        let _ = optipart_with_state(&mut e1, distribute_tree(&tree_a, 8), opts, &mut state);

        let mut warm_e = engine_on(MachineModel::cloudlab_wisconsin(), 8);
        let warm = optipart_with_state(&mut warm_e, distribute_tree(&tree_b, 8), opts, &mut state);
        assert_eq!(state.stats.replays, 1, "{:?}", state.stats);

        let mut cold_e = engine_on(MachineModel::cloudlab_wisconsin(), 8);
        let cold = optipart(&mut cold_e, distribute_tree(&tree_b, 8), opts);
        assert_outcomes_identical(&cold, &warm);
    }

    #[test]
    fn corrupted_state_is_detected_and_falls_back_cold() {
        let tree = MeshParams::normal(2500, 83).build::<3>(Curve::Hilbert);
        let opts = OptiPartOptions::default();
        let mut state = PartitionState::new();
        let mut e1 = engine_on(MachineModel::cloudlab_wisconsin(), 8);
        let _ = optipart_with_state(&mut e1, distribute_tree(&tree, 8), opts, &mut state);
        assert!(state.corrupt_for_test());

        let mut e2 = engine_on(MachineModel::cloudlab_wisconsin(), 8);
        let got = optipart_with_state(&mut e2, distribute_tree(&tree, 8), opts, &mut state);
        assert_eq!(state.stats.rejected, 1);
        assert_eq!(state.stats.colds, 2, "tampered entry must not be served");

        let mut cold_e = engine_on(MachineModel::cloudlab_wisconsin(), 8);
        let cold = optipart(&mut cold_e, distribute_tree(&tree, 8), opts);
        assert_outcomes_identical(&cold, &got);
    }

    #[test]
    fn shrunk_rank_count_invalidates_state() {
        // Entries fingerprinted at p = 8 must be pruned, not replayed, when
        // the engine shrank to 7 ranks.
        let tree = MeshParams::normal(2500, 89).build::<3>(Curve::Hilbert);
        let opts = OptiPartOptions::default();
        let mut state = PartitionState::new();
        let mut e1 = engine_on(MachineModel::cloudlab_wisconsin(), 8);
        let _ = optipart_with_state(&mut e1, distribute_tree(&tree, 8), opts, &mut state);
        assert_eq!(state.len(), 1);

        let mut e2 = engine_on(MachineModel::cloudlab_wisconsin(), 7);
        let warm = optipart_with_state(&mut e2, distribute_tree(&tree, 7), opts, &mut state);
        assert_eq!(state.stats.invalidated, 1);
        assert_eq!(state.stats.colds, 2);

        let mut cold_e = engine_on(MachineModel::cloudlab_wisconsin(), 7);
        let cold = optipart(&mut cold_e, distribute_tree(&tree, 7), opts);
        assert_outcomes_identical(&cold, &warm);
    }

    #[test]
    fn amortized_mode_bypasses_warm_start() {
        let tree = MeshParams::normal(2000, 97).build::<3>(Curve::Hilbert);
        let opts = OptiPartOptions {
            amortize_over: Some(50),
            ..Default::default()
        };
        let mut state = PartitionState::new();
        for _ in 0..2 {
            let mut e = engine_on(MachineModel::cloudlab_wisconsin(), 8);
            let _ = optipart_with_state(&mut e, distribute_tree(&tree, 8), opts, &mut state);
        }
        assert_eq!(state.stats.colds, 2);
        assert_eq!(state.stats.hits, 0);
        assert!(state.is_empty(), "amortized runs must not seed the cache");
    }

    #[test]
    fn state_cache_caps_and_refreshes() {
        let opts = OptiPartOptions::default();
        let mut state = PartitionState::new();
        for seed in 0..20u64 {
            let tree =
                MeshParams::normal(300 + seed as usize * 7, 101 + seed).build::<3>(Curve::Hilbert);
            let mut e = engine_on(MachineModel::titan(), 4);
            let _ = optipart_with_state(&mut e, distribute_tree(&tree, 4), opts, &mut state);
        }
        assert!(
            state.len() <= DEFAULT_STATE_CAP,
            "cache must stay bounded: {}",
            state.len()
        );
        // Re-running the newest mesh hits, not colds.
        let tree = MeshParams::normal(300 + 19 * 7, 101 + 19).build::<3>(Curve::Hilbert);
        let mut e = engine_on(MachineModel::titan(), 4);
        let _ = optipart_with_state(&mut e, distribute_tree(&tree, 4), opts, &mut state);
        assert_eq!(state.stats.hits, 1);
    }

    #[test]
    fn configurable_cap_bounds_and_evicts_fifo() {
        // A cap-2 state over 3 distinct meshes keeps only the newest two:
        // mesh 0 was evicted (cold again), meshes 1 and 2 still hit.
        let opts = OptiPartOptions::default();
        let mut state = PartitionState::with_cap(2);
        assert_eq!(state.cap(), 2);
        let mesh =
            |i: usize| MeshParams::normal(400 + i * 31, 211 + i as u64).build::<3>(Curve::Hilbert);
        for i in 0..3 {
            let mut e = engine_on(MachineModel::titan(), 4);
            let _ = optipart_with_state(&mut e, distribute_tree(&mesh(i), 4), opts, &mut state);
        }
        assert_eq!(state.len(), 2);
        for (i, want_hit) in [(1usize, true), (2, true), (0, false)] {
            let before = state.stats.hits;
            let mut e = engine_on(MachineModel::titan(), 4);
            let _ = optipart_with_state(&mut e, distribute_tree(&mesh(i), 4), opts, &mut state);
            assert_eq!(
                state.stats.hits > before,
                want_hit,
                "mesh {i}: {:?}",
                state.stats
            );
        }
        // Degenerate caps clamp to 1 instead of disabling the cache.
        assert_eq!(PartitionState::with_cap(0).cap(), 1);
    }

    #[test]
    fn morton_and_hilbert_both_supported() {
        for curve in Curve::ALL {
            let tree = MeshParams::normal(2000, 53).build::<3>(curve);
            let mut e = engine_on(MachineModel::cloudlab_clemson(), 8);
            let out = optipart(
                &mut e,
                distribute_tree(&tree, 8),
                OptiPartOptions::for_curve(curve),
            );
            assert_eq!(out.dist.total_len(), tree.len(), "{curve}");
            assert!(out.report.predicted_tp > 0.0);
        }
    }
}
