//! Partition-quality analysis (§5.5): communication matrix, NNZ, imbalance,
//! boundary surface.
//!
//! These are *global* (sequential) analyses over the full tree, used by the
//! figure harness and tests to characterise a partition exactly — the
//! distributed estimates live in [`crate::quality`].

use optipart_mpisim::CommMatrix;
use optipart_octree::neighbors::{face_adjacent_leaves, segment_surface};
use optipart_octree::LinearTree;
use optipart_sfc::SfcKey;
use std::collections::HashSet;

/// Owner rank of every leaf under the splitters.
pub fn assignment<const D: usize>(tree: &LinearTree<D>, splitters: &[SfcKey]) -> Vec<usize> {
    tree.leaves()
        .iter()
        .map(|kc| crate::partition::owner_of(splitters, &kc.key))
        .collect()
}

/// Elements owned per partition.
pub fn partition_counts(assign: &[usize], p: usize) -> Vec<u64> {
    let mut counts = vec![0u64; p];
    for &a in assign {
        counts[a] += 1;
    }
    counts
}

/// Load imbalance `λ = max/min` over non-empty interpretation of Table 1
/// (`work max / work min`; infinite if some partition is empty).
pub fn load_imbalance(counts: &[u64]) -> f64 {
    let max = counts.iter().copied().max().unwrap_or(0);
    let min = counts.iter().copied().min().unwrap_or(0);
    if max == 0 {
        1.0
    } else if min == 0 {
        f64::INFINITY
    } else {
        max as f64 / min as f64
    }
}

/// The communication matrix `M` of §5.5 for a face-stencil application:
/// `M[j][i] = m_ij` counts the *distinct elements* partition `i` needs from
/// partition `j` (stored sender→receiver, matching data flow).
///
/// Exact: uses true cross-level face adjacency of the tree, not the
/// same-size approximation of Algorithm 2.
pub fn communication_matrix<const D: usize>(
    tree: &LinearTree<D>,
    assign: &[usize],
    p: usize,
) -> CommMatrix {
    let leaves = tree.leaves();
    assert_eq!(leaves.len(), assign.len());
    let mut needed: HashSet<(usize, usize)> = HashSet::new(); // (receiver rank, ghost leaf)
    for (i, _kc) in leaves.iter().enumerate() {
        let oi = assign[i];
        for j in face_adjacent_leaves(leaves, i, tree.curve()) {
            if assign[j] != oi {
                needed.insert((oi, j));
            }
        }
    }
    let mut m = CommMatrix::new(p);
    for (receiver, ghost) in needed {
        m.add(assign[ghost], receiver, 1);
    }
    m
}

/// Boundary surface area of each partition in finest-face units — the `s`
/// of Fig. 2, exact across refinement levels.
pub fn partition_surfaces<const D: usize>(
    tree: &LinearTree<D>,
    assign: &[usize],
    p: usize,
) -> Vec<u64> {
    // Partitions are contiguous curve ranges; find each range.
    let mut surfaces = vec![0u64; p];
    let n = assign.len();
    let mut start = 0usize;
    while start < n {
        let owner = assign[start];
        let mut end = start + 1;
        while end < n && assign[end] == owner {
            end += 1;
        }
        surfaces[owner] += segment_surface(tree.leaves(), start, end, tree.curve());
        start = end;
    }
    surfaces
}

/// Number of *boundary elements* per partition: elements with at least one
/// face neighbour in another partition (what a halo exchange must send).
pub fn boundary_counts<const D: usize>(
    tree: &LinearTree<D>,
    assign: &[usize],
    p: usize,
) -> Vec<u64> {
    let leaves = tree.leaves();
    let mut counts = vec![0u64; p];
    for i in 0..leaves.len() {
        let oi = assign[i];
        if face_adjacent_leaves(leaves, i, tree.curve())
            .into_iter()
            .any(|j| assign[j] != oi)
        {
            counts[oi] += 1;
        }
    }
    counts
}

/// Exact per-iteration runtime prediction from the *true* communication
/// structure of a partition: `α·tc·Wmax·b + max_r(ts·msgs_r + tw·b·max(send_r,
/// recv_r))`, with ghost volumes and message counts taken from the exact
/// [`communication_matrix`] rather than Algorithm 2's same-size-neighbour
/// estimate.
///
/// This is the reference against which Algorithm 2's cheap distributed
/// estimate can be judged (Fig. 10's "predicted" curve, exact flavour).
pub fn exact_predicted_time<const D: usize>(
    tree: &optipart_octree::LinearTree<D>,
    assign: &[usize],
    p: usize,
    perf: &optipart_machine::PerfModel,
) -> f64 {
    let m = communication_matrix(tree, assign, p);
    let counts = partition_counts(assign, p);
    let wmax = counts.iter().copied().max().unwrap_or(0);
    let b = perf.app.elem_bytes;
    let comm_max = m
        .per_rank_traffic()
        .into_iter()
        .map(|(send, recv, msgs)| {
            perf.machine.ts * msgs as f64 + perf.machine.tw * b * send.max(recv) as f64
        })
        .fold(0.0f64, f64::max);
    perf.compute_time(wmax) + comm_max
}

/// Communication imbalance `bdy max / bdy min` (Fig. 11).
pub fn comm_imbalance(bdy_counts: &[u64]) -> f64 {
    load_imbalance(bdy_counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{distribute_tree, treesort_partition, PartitionOptions};
    use optipart_machine::{AppModel, MachineModel, PerfModel};
    use optipart_mpisim::Engine;
    use optipart_octree::MeshParams;
    use optipart_sfc::Curve;

    fn partitioned(n: usize, p: usize, curve: Curve, tol: f64) -> (LinearTree<3>, Vec<SfcKey>) {
        let tree = MeshParams::normal(n, 83).build::<3>(curve);
        let mut e = Engine::new(
            p,
            PerfModel::new(MachineModel::titan(), AppModel::laplacian_matvec()),
        );
        let out = treesort_partition(
            &mut e,
            distribute_tree(&tree, p),
            PartitionOptions::with_tolerance(tol),
        );
        (tree, out.splitters)
    }

    #[test]
    fn comm_matrix_is_structurally_symmetric() {
        // Face adjacency is symmetric, so i needs j ⇔ j needs i as *pairs of
        // ranks* (entry values may differ across levels).
        let (tree, splitters) = partitioned(2000, 8, Curve::Hilbert, 0.0);
        let assign = assignment(&tree, &splitters);
        let m = communication_matrix(&tree, &assign, 8);
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(m.get(a, b) > 0, m.get(b, a) > 0, "({a},{b})");
            }
        }
        assert!(m.nnz() > 0);
    }

    #[test]
    fn neighbor_ranks_communicate() {
        let (tree, splitters) = partitioned(2000, 4, Curve::Hilbert, 0.0);
        let assign = assignment(&tree, &splitters);
        let m = communication_matrix(&tree, &assign, 4);
        // Curve-consecutive partitions always share boundary.
        for r in 0..3 {
            assert!(m.get(r, r + 1) > 0, "ranks {r} and {} must talk", r + 1);
        }
    }

    #[test]
    fn hilbert_nnz_not_worse_than_morton() {
        // §5.5 / Fig. 12: Hilbert's locality gives a sparser comm matrix.
        // This is an aggregate property — individual meshes fluctuate by a
        // few percent either way — so compare totals over a panel of seeded
        // meshes instead of betting on one instance.
        let p = 16;
        let (mut nnz_h, mut nnz_m) = (0usize, 0usize);
        let (mut vol_h, mut vol_m) = (0u64, 0u64);
        for seed in [1u64, 2, 3, 5, 7, 11, 13] {
            for (curve, nnz, vol) in [
                (Curve::Hilbert, &mut nnz_h, &mut vol_h),
                (Curve::Morton, &mut nnz_m, &mut vol_m),
            ] {
                let tree = MeshParams {
                    seed,
                    num_points: 8000,
                    ..Default::default()
                }
                .build::<3>(curve);
                let mut e = Engine::new(
                    p,
                    PerfModel::new(MachineModel::titan(), AppModel::laplacian_matvec()),
                );
                let out = treesort_partition(
                    &mut e,
                    distribute_tree(&tree, p),
                    PartitionOptions::exact(),
                );
                let m = communication_matrix(&tree, &assignment(&tree, &out.splitters), p);
                *nnz += m.nnz();
                *vol += m.total_bytes();
            }
        }
        assert!(
            nnz_h <= nnz_m,
            "hilbert nnz {nnz_h} vs morton nnz {nnz_m} over the panel"
        );
        // Communicated volume tracks partition surface, where the curves
        // are near-equivalent; just require Hilbert stays within 5%.
        assert!(
            vol_h as f64 <= vol_m as f64 * 1.05,
            "hilbert volume {vol_h} vs morton volume {vol_m}"
        );
    }

    #[test]
    fn tolerance_reduces_total_communication() {
        // Fig. 12 (right): data volume decreases with tolerance.
        let p = 16;
        let (t0, s0) = partitioned(8000, p, Curve::Hilbert, 0.0);
        let (t5, s5) = partitioned(8000, p, Curve::Hilbert, 0.5);
        let v0 = communication_matrix(&t0, &assignment(&t0, &s0), p).total_bytes();
        let v5 = communication_matrix(&t5, &assignment(&t5, &s5), p).total_bytes();
        assert!(v5 <= v0, "tol 0.5 volume {v5} vs tol 0 volume {v0}");
    }

    #[test]
    fn counts_and_assignment_agree() {
        let (tree, splitters) = partitioned(3000, 8, Curve::Morton, 0.1);
        let assign = assignment(&tree, &splitters);
        let counts = partition_counts(&assign, 8);
        assert_eq!(counts.iter().sum::<u64>() as usize, tree.len());
        assert!(load_imbalance(&counts) >= 1.0);
    }

    #[test]
    fn boundary_counts_bounded_by_partition_counts() {
        let (tree, splitters) = partitioned(3000, 8, Curve::Hilbert, 0.0);
        let assign = assignment(&tree, &splitters);
        let counts = partition_counts(&assign, 8);
        let bdy = boundary_counts(&tree, &assign, 8);
        for (b, c) in bdy.iter().zip(&counts) {
            assert!(b <= c);
        }
        assert!(bdy.iter().sum::<u64>() > 0);
    }

    #[test]
    fn surfaces_positive_for_real_partitions() {
        let (tree, splitters) = partitioned(3000, 8, Curve::Hilbert, 0.0);
        let assign = assignment(&tree, &splitters);
        let surf = partition_surfaces(&tree, &assign, 8);
        assert!(surf.iter().all(|&s| s > 0));
    }
}
