//! Property-based tests for the partitioning algorithms.
//!
//! Strategies, engines and meshes come from `optipart-testkit`; all types
//! are the testkit re-exports (`optipart_testkit::core::…`), never
//! `crate::…` paths — the unit-test target is a separate compilation of
//! this crate, so mixing the two would break type identity.

use optipart_testkit::core::optipart::{optipart, OptiPartOptions};
use optipart_testkit::core::partition::{
    distribute_shuffled, owner_of, treesort_partition, PartitionOptions,
};
use optipart_testkit::core::samplesort::{samplesort_partition, SampleSortOptions};
use optipart_testkit::core::treesort::treesort;
use optipart_testkit::gen::{engine_wisconsin as engine, tree};
use optipart_testkit::machine::{AppModel, MachineModel, PerfModel};
use optipart_testkit::mpisim::Engine;
use optipart_testkit::octree::{sample_points, Distribution};
use optipart_testkit::sfc::{Cell, Curve, KeyedCell};
use optipart_testkit::strategies::curve;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Invariant: any tolerance, any p, any seed — the partitioned output is
    /// the globally sorted input, every element on its owner.
    #[test]
    fn partition_is_a_permutation_in_sfc_order(
        seed in 0u64..500,
        p in 2usize..24,
        tol in 0.0f64..0.8,
        c in curve(),
    ) {
        let t = tree(seed, 400, c);
        let mut expected: Vec<KeyedCell<3>> = t.leaves().to_vec();
        expected.sort_unstable();

        let mut e = engine(p);
        let out = treesort_partition(
            &mut e,
            distribute_shuffled(&t, p, seed),
            PartitionOptions::with_tolerance(tol),
        );
        prop_assert_eq!(out.dist.concat(), expected);
        for (r, buf) in out.dist.parts().iter().enumerate() {
            for kc in buf {
                prop_assert_eq!(owner_of(&out.splitters, &kc.key), r);
            }
        }
        // Splitters are non-decreasing.
        prop_assert!(out.splitters.windows(2).all(|w| w[0] <= w[1]));
    }

    /// The achieved tolerance never exceeds the requested one (up to the
    /// resolution limit of the key space).
    #[test]
    fn achieved_tolerance_within_request(
        seed in 0u64..500,
        p in 2usize..16,
        tol in 0.05f64..0.45,
    ) {
        let t = tree(seed, 500, Curve::Hilbert);
        let mut e = engine(p);
        let out = treesort_partition(
            &mut e,
            distribute_shuffled(&t, p, seed),
            PartitionOptions::with_tolerance(tol),
        );
        prop_assert!(
            out.report.achieved_tolerance <= tol + 1e-9,
            "achieved {} > requested {}",
            out.report.achieved_tolerance,
            tol
        );
    }

    /// OptiPart returns the same multiset regardless of machine, and its
    /// report is internally consistent.
    #[test]
    fn optipart_consistency(seed in 0u64..300, p in 2usize..12) {
        let t = tree(seed, 400, Curve::Hilbert);
        for machine in [MachineModel::titan(), MachineModel::cloudlab_clemson()] {
            let mut e = Engine::new(p, PerfModel::new(machine, AppModel::laplacian_matvec()));
            let out = optipart(&mut e, distribute_shuffled(&t, p, seed), OptiPartOptions::default());
            prop_assert_eq!(out.dist.total_len(), t.len());
            prop_assert_eq!(out.report.counts.iter().sum::<u64>() as usize, t.len());
            prop_assert_eq!(
                out.report.wmax,
                *out.report.counts.iter().max().unwrap()
            );
            prop_assert!(out.report.predicted_tp >= 0.0);
        }
    }

    /// SampleSort and TreeSort partitioning agree on the global order.
    #[test]
    fn samplesort_treesort_equivalence(seed in 0u64..300, p in 2usize..12, c in curve()) {
        let t = tree(seed, 300, c);
        let mut e1 = engine(p);
        let a = treesort_partition(
            &mut e1,
            distribute_shuffled(&t, p, seed),
            PartitionOptions::exact(),
        );
        let mut e2 = engine(p);
        let b = samplesort_partition(
            &mut e2,
            distribute_shuffled(&t, p, seed ^ 1),
            SampleSortOptions::default(),
        );
        prop_assert_eq!(a.dist.concat(), b.dist.concat());
    }

    /// Sequential TreeSort equals comparison sort on arbitrary (possibly
    /// overlapping, multi-level) cell sets.
    #[test]
    fn treesort_equals_sort(seed in 0u64..1000, n in 1usize..300, c in curve()) {
        let pts = sample_points::<3>(Distribution::LogNormal, n, seed);
        let mut cells: Vec<KeyedCell<3>> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                KeyedCell::new(Cell::new(*p, 3 + (i % 10) as u8), c)
            })
            .collect();
        let mut expected = cells.clone();
        expected.sort_unstable();
        treesort(&mut cells);
        prop_assert_eq!(cells, expected);
    }

    /// Virtual time is monotone in tolerance *rounds*: looser tolerance
    /// never needs more splitter rounds.
    #[test]
    fn looser_tolerance_never_more_rounds(seed in 0u64..200, p in 2usize..12) {
        let t = tree(seed, 400, Curve::Hilbert);
        let rounds_at = |tol: f64| {
            let mut e = engine(p);
            treesort_partition(
                &mut e,
                distribute_shuffled(&t, p, seed),
                PartitionOptions::with_tolerance(tol),
            )
            .report
            .rounds
        };
        let tight = rounds_at(0.0);
        let loose = rounds_at(0.5);
        prop_assert!(loose <= tight, "loose {loose} > tight {tight}");
    }
}
