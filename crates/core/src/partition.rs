//! Distributed TreeSort partitioning with flexible tolerance (§3.1–3.2).
//!
//! The distributed algorithm refines *splitter buckets* breadth-first: each
//! round, every bucket still containing an unsatisfied partition target is
//! split into its `2^D` curve-ordered children, local child counts are
//! summed with one vector all-reduce (no comparisons — the ranks of the
//! buckets follow from the counts alone), and refinement stops as soon as
//! every target `r·N/p` is within `tolerance · N/p` of a bucket boundary.
//! The selected boundaries become the splitters; one staged `Alltoallv`
//! moves the data; a local TreeSort finishes the ordering. This is
//! Algorithm 3 minus the performance-model stopping rule (recovered by
//! "iterating till the work is equally divided", as the paper notes).

use crate::treesort::treesort;
use optipart_mpisim::{AllToAllAlgo, DistVec, Engine};
use optipart_octree::LinearTree;
use optipart_sfc::{KeyedCell, SfcKey, MAX_DEPTH};

/// Phase labels used for the Figs. 5–6 breakdowns.
pub const PHASE_SPLITTER: &str = "splitter";
/// All-to-all data exchange phase label.
pub const PHASE_ALL2ALL: &str = "all2all";
/// Local sort phase label.
pub const PHASE_LOCAL_SORT: &str = "local_sort";
/// One splitter-refinement round (nested inside [`PHASE_SPLITTER`]): the
/// per-round spans the trace timeline shows for the tolerance search.
pub const PHASE_REFINE: &str = "refine";

/// Options for the flexible distributed TreeSort.
#[derive(Clone, Copy, Debug)]
pub struct PartitionOptions {
    /// Load-balance tolerance as a fraction of the ideal grain `N/p`
    /// (the x-axis of Figs. 7–12). `0.0` refines until targets are met
    /// exactly (up to key resolution).
    pub tolerance: f64,
    /// Staged splitter selection: at most this many buckets are refined per
    /// reduction round (the `k ≤ p` of Eq. 2). `None` = unlimited.
    pub max_split_per_round: Option<usize>,
    /// All-to-all schedule for the data exchange (§3.1 uses staged).
    pub alltoall: AllToAllAlgo,
    /// Cap on splitter refinement depth (≤ [`MAX_DEPTH`]).
    pub max_level: u8,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions {
            tolerance: 0.0,
            max_split_per_round: None,
            alltoall: AllToAllAlgo::Hypercube,
            max_level: MAX_DEPTH,
        }
    }
}

impl PartitionOptions {
    /// Equal-work partitioning (tolerance 0) — the conventional SFC scheme.
    pub fn exact() -> Self {
        Self::default()
    }

    /// Flexible partitioning with the given tolerance.
    pub fn with_tolerance(tolerance: f64) -> Self {
        PartitionOptions {
            tolerance,
            ..Self::default()
        }
    }
}

/// Report of one partitioning run.
#[derive(Clone, Debug)]
pub struct PartitionReport {
    /// Reduction rounds performed during splitter selection.
    pub rounds: usize,
    /// Deepest bucket level refined to.
    pub splitter_level: u8,
    /// Worst relative deviation of a realised boundary from its target,
    /// in units of `N/p` — the *achieved* tolerance.
    pub achieved_tolerance: f64,
    /// Per-rank element counts after the exchange.
    pub counts: Vec<u64>,
    /// Load imbalance `λ = max/min` of `counts`.
    pub lambda: f64,
    /// Maximum per-rank work `Wmax` (elements).
    pub wmax: u64,
    /// Estimated `Cmax` (boundary octants) if a quality pass ran, else 0.
    pub cmax: u64,
    /// Predicted application runtime via Eq. (3) if a quality pass ran.
    pub predicted_tp: f64,
}

/// Outcome of a partitioning run: the redistributed, locally sorted data,
/// the splitters that define ownership, and the report.
#[derive(Clone, Debug)]
pub struct PartitionOutcome<const D: usize> {
    /// The partitioned, SFC-sorted elements.
    pub dist: DistVec<KeyedCell<D>>,
    /// `p - 1` splitter keys: rank `r` owns keys in
    /// `[splitters[r-1], splitters[r])` (with MIN/MAX sentinels implied).
    pub splitters: Vec<SfcKey>,
    /// Run report.
    pub report: PartitionReport,
}

impl<const D: usize> PartitionOutcome<D> {
    /// Owner rank of a key under these splitters.
    #[inline]
    pub fn owner_of(&self, key: &SfcKey) -> usize {
        owner_of(&self.splitters, key)
    }
}

/// Owner rank of `key` under `splitters` (partition r ⇔ `[s_{r-1}, s_r)`).
#[inline]
pub fn owner_of(splitters: &[SfcKey], key: &SfcKey) -> usize {
    splitters.partition_point(|s| s <= key)
}

/// Audits a splitter vector before it is used to move data: exactly `p − 1`
/// splitters, sorted, and strictly increasing whenever the input is large
/// enough that no partition has to be empty (`n ≥ p`; with fewer elements
/// — or fewer *distinct keys* — than ranks, the tail splitters legitimately
/// collapse to `SfcKey::MAX`).
/// Panics with the offending positions — a wrong splitter vector here would
/// silently mis-route elements in the exchange.
pub fn audit_splitters(splitters: &[SfcKey], n: usize, p: usize) {
    assert!(
        splitters.len() == p - 1,
        "audit: {} splitters for p = {p} (need {})",
        splitters.len(),
        p - 1
    );
    for (i, w) in splitters.windows(2).enumerate() {
        assert!(
            w[0] <= w[1],
            "audit: splitters out of order at {i}: {:?} > {:?}",
            w[0],
            w[1]
        );
        // `SfcKey::MAX` is the deliberate give-up sentinel: it is emitted
        // only when the key space cannot supply p − 1 distinct boundaries
        // (duplicate-key inputs with fewer distinct keys than ranks), where
        // empty tail ranks are unavoidable even with n ≥ p elements.
        assert!(
            n < p || w[0] < w[1] || w[0] == SfcKey::MAX,
            "audit: duplicate splitter at {i} ({:?}) with n = {n} ≥ p = {p}: \
             a partition would be empty",
            w[0]
        );
    }
}

/// Block-distributes a tree's leaves over `p` ranks — the arbitrary initial
/// `N/p ± 1` placement the partitioners start from.
///
/// Note the leaves arrive *sorted*, so the subsequent exchange moves little
/// data; use [`distribute_shuffled`] to model the paper's workload of
/// randomly generated, unsorted octants.
pub fn distribute_tree<const D: usize>(tree: &LinearTree<D>, p: usize) -> DistVec<KeyedCell<D>> {
    DistVec::from_global(tree.leaves(), p)
}

/// Block-distributes a random permutation of the tree's leaves — the
/// paper's §4.2 input class ("randomly generated octrees"), where the
/// all-to-all exchange moves essentially all data.
///
/// Deterministic Fisher–Yates driven by a SplitMix64 stream, so runs are
/// reproducible without pulling a RNG dependency into the core crate.
pub fn distribute_shuffled<const D: usize>(
    tree: &LinearTree<D>,
    p: usize,
    seed: u64,
) -> DistVec<KeyedCell<D>> {
    let mut leaves = tree.leaves().to_vec();
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..leaves.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        leaves.swap(i, j);
    }
    DistVec::from_global(&leaves, p)
}

/// One splitter-candidate bucket: the half-open key range of a subtree.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Bucket {
    /// Curve path of the bucket's prefix (digits above `level`, zero-padded).
    pub path: u128,
    /// Bucket depth.
    pub level: u8,
    /// Global element count inside.
    pub count: u64,
}

impl Bucket {
    /// Lower boundary key: the smallest key of any cell in this subtree.
    #[inline]
    pub fn lo_key(&self) -> SfcKey {
        SfcKey::from_parts(self.path, 0)
    }

    /// Path span of the subtree (number of finest-level slots).
    #[inline]
    fn span<const D: usize>(&self) -> u128 {
        1u128 << ((MAX_DEPTH - self.level) as u32 * D as u32)
    }

    /// The `2^D` children, in curve order.
    fn children<const D: usize>(&self) -> Vec<Bucket> {
        let child_span = self.span::<D>() >> D;
        (0..(1usize << D))
            .map(|i| Bucket {
                path: self.path + child_span * i as u128,
                level: self.level + 1,
                count: 0,
            })
            .collect()
    }
}

/// Global counts of a previous splitter search's final bucket tiling,
/// recounted on the **current** mesh — the accelerator behind OptiPart's
/// warm-start replay ([`crate::optipart::optipart_with_state`]). Every
/// finished search leaves a full tiling of the key domain (buckets sorted
/// by path, spans contiguous), so the table can answer most child-count
/// queries of a re-run ladder without touching the element data.
///
/// Serving a split from the table costs nothing on the engine's virtual
/// clocks; only buckets that descend *below* the table's resolution into a
/// populated region — the moving refinement front — fall back to a live
/// count pass.
#[derive(Clone, Debug)]
pub(crate) struct CountTable {
    /// `(path, level, count)` per leaf, sorted by path, tiling the domain.
    pub leaves: Vec<(u128, u8, u64)>,
}

impl CountTable {
    /// Child counts of `b`, when derivable from the table: either every
    /// leaf overlapping `b` is strictly deeper (octree alignment then puts
    /// each leaf inside exactly one child — sum them), or `b` sits inside a
    /// single coarser-or-equal leaf holding zero elements (all children
    /// trivially empty). Returns `None` when `b` reaches below the table's
    /// resolution into a populated region and a real recount is needed.
    pub(crate) fn child_counts<const D: usize>(&self, b: &Bucket) -> Option<Vec<u64>> {
        let nc = 1usize << D;
        let span = b.span::<D>();
        let child_span = span >> D;
        let j = self.leaves.partition_point(|&(path, _, _)| path <= b.path);
        debug_assert!(j > 0, "leaves must tile the domain from path 0");
        let (leaf_path, leaf_level, leaf_count) = self.leaves[j - 1];
        if leaf_level <= b.level {
            // Octree alignment: a coarser-or-equal leaf whose range holds
            // `b.path` covers all of `b`.
            debug_assert!(leaf_path <= b.path);
            return if leaf_count == 0 {
                Some(vec![0; nc])
            } else {
                None
            };
        }
        // Every leaf overlapping `b` is strictly deeper than `b`: a deeper
        // aligned leaf starting before `b.path` ends at or before it, and
        // no coarser leaf can start strictly inside `b`'s span. The leaves
        // therefore tile `b`'s children exactly.
        let hi = b.path + span;
        let j0 = self.leaves.partition_point(|&(path, _, _)| path < b.path);
        let mut counts = vec![0u64; nc];
        for &(path, _, count) in &self.leaves[j0..] {
            if path >= hi {
                break;
            }
            counts[((path - b.path) / child_span) as usize] += count;
        }
        Some(counts)
    }
}

/// Mutable splitter-search state shared by distributed TreeSort and
/// OptiPart (which differ only in their stopping rule).
pub(crate) struct SplitterSearch {
    /// Active buckets, sorted by path; their counts always sum to `N`.
    pub buckets: Vec<Bucket>,
    /// Global element count.
    pub n: u64,
    /// Rounds executed.
    pub rounds: usize,
}

impl SplitterSearch {
    /// Replicated initial state from an already-known global count — used
    /// by rank-view (threaded) implementations where every rank maintains
    /// an identical copy of the search.
    pub(crate) fn replicated(n: u64) -> Self {
        SplitterSearch {
            buckets: vec![Bucket {
                path: 0,
                level: 0,
                count: n,
            }],
            n,
            rounds: 0,
        }
    }

    /// Initial state: the root bucket holding everything.
    pub fn new<const D: usize>(engine: &mut Engine, dist: &DistVec<KeyedCell<D>>) -> Self {
        let local: Vec<u64> = dist.counts().iter().map(|&c| c as u64).collect();
        let n = engine.allreduce_sum_u64(&local);
        SplitterSearch {
            buckets: vec![Bucket {
                path: 0,
                level: 0,
                count: n,
            }],
            n,
            rounds: 0,
        }
    }

    /// Initial state with per-element weights: the bucket "counts" become
    /// weight sums and targets become `r·W/p` — the weighted partitioning
    /// used when octants carry non-uniform work (e.g. level-dependent
    /// element cost in AMR codes, or the coarse-grid weighting of the
    /// authors' earlier bottom-up scheme [Sundar et al. 2008]).
    pub fn new_weighted<const D: usize, W>(
        engine: &mut Engine,
        dist: &mut DistVec<KeyedCell<D>>,
        weight: &W,
    ) -> Self
    where
        W: Fn(&KeyedCell<D>) -> u64 + Sync,
    {
        let local: Vec<u64> = engine.compute_map(dist, |_r, buf| {
            (buf.len() as f64 * 8.0, buf.iter().map(weight).sum::<u64>())
        });
        let n = engine.allreduce_sum_u64(&local);
        SplitterSearch {
            buckets: vec![Bucket {
                path: 0,
                level: 0,
                count: n,
            }],
            n,
            rounds: 0,
        }
    }

    /// Target global ranks `r·N/p` for `r = 1..p`.
    fn targets(&self, p: usize) -> Vec<u64> {
        (1..p).map(|r| (r as u64 * self.n) / p as u64).collect()
    }

    /// Cumulative counts before each bucket.
    fn cumulative(&self) -> Vec<u64> {
        let mut cum = Vec::with_capacity(self.buckets.len());
        let mut acc = 0u64;
        for b in &self.buckets {
            cum.push(acc);
            acc += b.count;
        }
        cum
    }

    /// Indices of buckets whose interior still contains a target farther
    /// than `tol_units` from both edges (and which can still refine).
    pub fn violating_buckets(&self, p: usize, tol_units: f64, max_level: u8) -> Vec<usize> {
        let cum = self.cumulative();
        let targets = self.targets(p);
        let mut out = Vec::new();
        let mut ti = 0usize;
        for (bi, b) in self.buckets.iter().enumerate() {
            if b.level >= max_level {
                continue;
            }
            let lo = cum[bi];
            let hi = lo + b.count;
            while ti < targets.len() && targets[ti] < lo {
                ti += 1;
            }
            let mut tj = ti;
            while tj < targets.len() && targets[tj] <= hi {
                let t = targets[tj];
                let err = (t - lo).min(hi - t) as f64;
                if err > tol_units {
                    out.push(bi);
                    break;
                }
                tj += 1;
            }
        }
        out
    }

    /// Indices of refinable buckets whose interior contains **two or more**
    /// targets. Such a bucket forces two splitters onto the same boundary —
    /// an empty partition — so OptiPart must refine it regardless of the
    /// performance model (its `Wmax` is at least two grains anyway).
    pub fn multi_target_buckets(&self, p: usize, max_level: u8) -> Vec<usize> {
        self.buckets_with_targets(p, max_level, 2)
    }

    /// Indices of refinable non-empty buckets whose interior holds at
    /// least `min` targets (strictly inside — a target on a bucket edge
    /// already has its boundary).
    fn buckets_with_targets(&self, p: usize, max_level: u8, min: usize) -> Vec<usize> {
        let cum = self.cumulative();
        let targets = self.targets(p);
        let mut out = Vec::new();
        for (bi, b) in self.buckets.iter().enumerate() {
            if b.level >= max_level || b.count == 0 {
                continue;
            }
            let lo = cum[bi];
            let hi = lo + b.count;
            let first = targets.partition_point(|&t| t <= lo);
            let last = targets.partition_point(|&t| t < hi);
            if last - first >= min {
                out.push(bi);
            }
        }
        out
    }

    /// Distinct interior boundary candidates `(cum, key)`: one per
    /// cumulative count strictly between 0 and `N` (the first bucket
    /// boundary at each count — later duplicates follow empty buckets and
    /// bound the same element split). Boundaries at 0 or `N` are excluded
    /// because choosing one would leave rank 0 or rank `p−1` empty.
    fn interior_bounds(&self) -> Vec<(u64, SfcKey)> {
        let cum = self.cumulative();
        let mut bounds: Vec<(u64, SfcKey)> = Vec::new();
        for (b, &c) in self.buckets.iter().zip(&cum) {
            if c == 0 || c >= self.n {
                continue;
            }
            if bounds.last().is_none_or(|&(pc, _)| pc != c) {
                bounds.push((c, b.lo_key()));
            }
        }
        bounds
    }

    /// True when the bucket structure offers enough distinct interior
    /// boundaries for [`Self::choose_splitters`] to leave every rank
    /// non-empty. Always reachable by refinement when `N ≥ p` and keys
    /// are distinct; never reachable when `N < p`.
    pub(crate) fn feasible(&self, p: usize) -> bool {
        self.interior_bounds().len() + 1 >= p
    }

    /// Buckets the flexible-tolerance splitter loop must still refine:
    /// tolerance violations first; once those are clear, buckets whose
    /// refinement the *chooser* forces — a bucket trapping two or more
    /// targets, or (fewer distinct interior boundaries than targets) any
    /// bucket holding a target. The per-target check of
    /// [`Self::violating_buckets`] looks at bucket edges in isolation, so
    /// at tolerances ≥ 0.5 two targets can contend for one shared edge —
    /// satisfying the tolerance test while leaving the strictly-increasing
    /// chooser short of boundaries (the audit's empty-partition class).
    ///
    /// Shared verbatim by the global-view and rank-view (threaded) loops
    /// so both replay the identical state machine.
    pub(crate) fn pending_splits(&self, p: usize, tol_units: f64, max_level: u8) -> Vec<usize> {
        let violating = self.violating_buckets(p, tol_units, max_level);
        if !violating.is_empty() {
            return violating;
        }
        let multi = self.multi_target_buckets(p, max_level);
        if !multi.is_empty() {
            return multi;
        }
        if self.feasible(p) {
            return Vec::new();
        }
        // Feasibility forcing: not enough distinct interior boundaries for
        // p−1 splitters. Split only as many target-bearing buckets as the
        // deficit requires — splitting them all would over-refine far past
        // the requested tolerance (each split can add up to 2^D − 1
        // boundaries). A split can also add none (all elements in one
        // child), so the loop may come back for more; levels grow each
        // time, which bounds termination at `max_level`.
        let deficit = (p - 1).saturating_sub(self.interior_bounds().len());
        let mut force = self.buckets_with_targets(p, max_level, 1);
        force.truncate(deficit.max(1));
        force
    }

    /// One refinement round: split the given buckets, recount via one
    /// compute pass + one vector all-reduce. Returns the number of child
    /// buckets counted (the reduction length, for Eq. 2's `k`).
    pub fn refine_round<const D: usize>(
        &mut self,
        engine: &mut Engine,
        dist: &mut DistVec<KeyedCell<D>>,
        split: &[usize],
    ) -> usize {
        self.refine_round_weighted(engine, dist, split, &|_| 1u64)
    }

    /// [`SplitterSearch::refine_round`] with per-element weights.
    pub fn refine_round_weighted<const D: usize, W>(
        &mut self,
        engine: &mut Engine,
        dist: &mut DistVec<KeyedCell<D>>,
        split: &[usize],
        weight: &W,
    ) -> usize
    where
        W: Fn(&KeyedCell<D>) -> u64 + Sync,
    {
        let nc = 1usize << D;
        let bounds = self.split_bounds::<D>(split);
        let elem_bytes = std::mem::size_of::<KeyedCell<D>>() as f64;
        let local_counts: Vec<Vec<u64>> = engine.compute_map(dist, |_r, buf| {
            // One pass over the local data (the tc·N/p term of Eq. 1).
            (
                buf.len() as f64 * elem_bytes,
                count_children::<D, _>(buf, &bounds, weight),
            )
        });
        let global = engine.allreduce_sum_vec_u64(&local_counts);
        self.apply_split::<D>(split, &global);
        bounds.len() * nc
    }

    /// Warm-replay variant of [`Self::refine_round`]: the identical state
    /// transition, but child counts still resolvable from the recounted
    /// `table` are served without touching the element data — only buckets
    /// that descend below the table's resolution (the regions where the
    /// mesh actually changed) pay the count pass + all-reduce. Returns the
    /// number of child buckets counted live.
    pub fn refine_round_warm<const D: usize>(
        &mut self,
        engine: &mut Engine,
        dist: &mut DistVec<KeyedCell<D>>,
        split: &[usize],
        table: &CountTable,
    ) -> usize {
        let nc = 1usize << D;
        let mut global = vec![0u64; split.len() * nc];
        let mut live: Vec<usize> = Vec::new();
        for (si, &bi) in split.iter().enumerate() {
            match table.child_counts::<D>(&self.buckets[bi]) {
                Some(counts) => global[si * nc..(si + 1) * nc].copy_from_slice(&counts),
                None => live.push(si),
            }
        }
        if !live.is_empty() {
            let idx: Vec<usize> = live.iter().map(|&si| split[si]).collect();
            let bounds = self.split_bounds::<D>(&idx);
            let elem_bytes = std::mem::size_of::<KeyedCell<D>>() as f64;
            let local_counts: Vec<Vec<u64>> = engine.compute_map(dist, |_r, buf| {
                (
                    buf.len() as f64 * elem_bytes,
                    count_children::<D, _>(buf, &bounds, &|_| 1u64),
                )
            });
            let counted = engine.allreduce_sum_vec_u64(&local_counts);
            for (li, &si) in live.iter().enumerate() {
                global[si * nc..(si + 1) * nc].copy_from_slice(&counted[li * nc..(li + 1) * nc]);
            }
        }
        self.apply_split::<D>(split, &global);
        live.len() * nc
    }

    /// Key-path boundaries `(lo, hi, level)` of the buckets about to split.
    pub(crate) fn split_bounds<const D: usize>(&self, split: &[usize]) -> Vec<(u128, u128, u8)> {
        split
            .iter()
            .map(|&bi| {
                let b = self.buckets[bi];
                (b.path, b.path + b.span::<D>(), b.level)
            })
            .collect()
    }

    /// Replaces the split buckets with their children carrying the globally
    /// reduced counts — the deterministic state update every rank replays
    /// identically (pure; shared by the virtual-engine and threaded
    /// implementations).
    pub(crate) fn apply_split<const D: usize>(&mut self, split: &[usize], global: &[u64]) {
        let nc = 1usize << D;
        let mut next: Vec<Bucket> = Vec::with_capacity(self.buckets.len() + split.len() * (nc - 1));
        let mut si = 0usize;
        for (bi, b) in self.buckets.iter().enumerate() {
            if si < split.len() && split[si] == bi {
                let mut kids = b.children::<D>();
                for (ci, kid) in kids.iter_mut().enumerate() {
                    kid.count = global[si * nc + ci];
                }
                debug_assert_eq!(
                    kids.iter().map(|k| k.count).sum::<u64>(),
                    b.count,
                    "child counts must sum to the parent's"
                );
                next.extend(kids);
                si += 1;
            } else {
                next.push(*b);
            }
        }
        self.buckets = next;
        self.rounds += 1;
    }

    /// Chooses the final splitters: for each target, the nearest *distinct
    /// interior* bucket boundary (cumulative count strictly between 0 and
    /// `N`), constrained to stay strictly above the previous choice while
    /// reserving one boundary for every later target — so no partition is
    /// left empty (duplicate, zero or end boundaries would assign a rank
    /// zero elements, which the paper's λ = max/min metric cannot even
    /// express). Returns `(splitters, achieved tolerance in N/p units)`.
    ///
    /// The non-empty constraint can push the achieved tolerance above the
    /// request only when the request is ≥ 0.5 (two targets a grain apart
    /// contending for one boundary). When the bucket structure has fewer
    /// distinct interior boundaries than targets (`!feasible`, e.g.
    /// `N < p`) the tail is padded with [`SfcKey::MAX`]; the splitter
    /// loops refine past that state whenever `N ≥ p`.
    pub fn choose_splitters(&self, p: usize) -> (Vec<SfcKey>, f64) {
        let bounds = self.interior_bounds();
        let grain = (self.n as f64 / p as f64).max(1.0);
        let targets = self.targets(p);
        let m = targets.len();
        // With ≥ m distinct boundaries, cap each choice so every remaining
        // target keeps a boundary of its own; the greedy walk then never
        // strands a later target. (Short of boundaries the cap is moot —
        // the exhausted tail pads with MAX.)
        let reserve = bounds.len() >= m;
        let mut splitters = Vec::with_capacity(m);
        let mut worst = 0.0f64;
        let mut next = 0usize; // first index above the previous choice
        for (j, &t) in targets.iter().enumerate() {
            let hi = if reserve {
                bounds.len() + j - m
            } else {
                bounds.len().wrapping_sub(1)
            };
            if bounds.is_empty() || next > hi {
                // Out of boundaries; `next` only grows, so the padding
                // stays at the tail and the splitters remain sorted.
                splitters.push(SfcKey::MAX);
                worst = worst.max(1.0);
                continue;
            }
            let mut i = bounds[next..=hi].partition_point(|&(c, _)| c < t) + next;
            if i > hi {
                i = hi;
            }
            let best = if i > next && t - bounds[i - 1].0 <= bounds[i].0.saturating_sub(t) {
                i - 1
            } else {
                i
            };
            worst = worst.max(bounds[best].0.abs_diff(t) as f64 / grain);
            splitters.push(bounds[best].1);
            next = best + 1;
        }
        (splitters, worst)
    }

    /// Deepest active bucket level.
    pub fn max_level(&self) -> u8 {
        self.buckets.iter().map(|b| b.level).max().unwrap_or(0)
    }
}

/// Histogram of `buf` over the children of the buckets bounded by
/// `bounds` (the local counting pass of one refinement round), weighted.
pub(crate) fn count_children<const D: usize, W>(
    buf: &[KeyedCell<D>],
    bounds: &[(u128, u128, u8)],
    weight: &W,
) -> Vec<u64>
where
    W: Fn(&KeyedCell<D>) -> u64,
{
    let nc = 1usize << D;
    let mut counts = vec![0u64; bounds.len() * nc];
    for kc in buf.iter() {
        let path = kc.key.path();
        // Which split bucket (if any) holds this element?
        let si = bounds.partition_point(|&(lo, _, _)| lo <= path);
        if si == 0 {
            continue;
        }
        let (_lo, hi, lvl) = bounds[si - 1];
        if path >= hi {
            continue;
        }
        let child = if kc.key.level() <= lvl {
            0
        } else {
            kc.key.digit::<D>(lvl)
        };
        counts[(si - 1) * nc + child] += weight(kc);
    }
    counts
}

/// Runs splitter selection only (no data movement) — shared by
/// [`treesort_partition`] and benchmarks that study the splitter phase.
pub(crate) fn select_splitters<const D: usize>(
    engine: &mut Engine,
    dist: &mut DistVec<KeyedCell<D>>,
    opts: &PartitionOptions,
) -> (SplitterSearch, Vec<SfcKey>, f64) {
    let p = engine.p();
    let mut search = SplitterSearch::new(engine, dist);
    let tol_units = opts.tolerance * (search.n as f64 / p as f64);
    loop {
        let mut violating = search.pending_splits(p, tol_units, opts.max_level);
        if violating.is_empty() {
            break;
        }
        if let Some(k) = opts.max_split_per_round {
            // Staged selection: cap the reduction length per round (Eq. 2).
            let max_buckets = (k / (1 << D)).max(1);
            violating.truncate(max_buckets);
        }
        engine.phase(PHASE_REFINE, |e| search.refine_round(e, dist, &violating));
    }
    let (splitters, achieved) = search.choose_splitters(p);
    (search, splitters, achieved)
}

/// Moves every element to its owner under `splitters` and TreeSorts locally.
pub(crate) fn exchange_and_sort<const D: usize>(
    engine: &mut Engine,
    dist: DistVec<KeyedCell<D>>,
    splitters: &[SfcKey],
    algo: AllToAllAlgo,
) -> DistVec<KeyedCell<D>> {
    audit_splitters(splitters, dist.total_len(), engine.p());
    let recv = engine.phase(PHASE_ALL2ALL, |e| {
        e.alltoallv_by(
            dist.into_parts(),
            |_src, kc: &KeyedCell<D>| owner_of(splitters, &kc.key),
            algo,
        )
    });
    let mut out = DistVec::from_parts(recv);
    engine.phase(PHASE_LOCAL_SORT, |e| {
        let elem = std::mem::size_of::<KeyedCell<D>>() as f64;
        e.compute(&mut out, |_r, buf| {
            treesort(buf);
            // MSD radix touches each element once per refined level; charge
            // the expected log-depth passes.
            let depth = (buf.len().max(2) as f64).log2() / D as f64;
            buf.len() as f64 * elem * depth.max(1.0)
        });
    });
    out
}

/// Distributed TreeSort partitioning (§3.1–3.2): flexible-tolerance splitter
/// selection, staged all-to-all, local TreeSort.
pub fn treesort_partition<const D: usize>(
    engine: &mut Engine,
    mut dist: DistVec<KeyedCell<D>>,
    opts: PartitionOptions,
) -> PartitionOutcome<D> {
    let (search, splitters, achieved) =
        engine.phase(PHASE_SPLITTER, |e| select_splitters(e, &mut dist, &opts));
    let out = exchange_and_sort(engine, dist, &splitters, opts.alltoall);

    let counts: Vec<u64> = out.counts().iter().map(|&c| c as u64).collect();
    let lambda = out.load_imbalance();
    let wmax = out.wmax() as u64;
    PartitionOutcome {
        dist: out,
        splitters,
        report: PartitionReport {
            rounds: search.rounds,
            splitter_level: search.max_level(),
            achieved_tolerance: achieved,
            counts,
            lambda,
            wmax,
            cmax: 0,
            predicted_tp: 0.0,
        },
    }
}

/// Weighted distributed TreeSort partitioning: balances the *weight* of the
/// elements (`Σ w` per rank within `tolerance·W/p`) instead of their count.
///
/// Use when octants carry non-uniform work — e.g. deeper AMR elements with
/// costlier kernels, or coarse proxy octants standing in for many fine ones.
/// The report's `counts`/`wmax`/`lambda` are expressed in weight units.
pub fn treesort_partition_weighted<const D: usize, W>(
    engine: &mut Engine,
    mut dist: DistVec<KeyedCell<D>>,
    opts: PartitionOptions,
    weight: W,
) -> PartitionOutcome<D>
where
    W: Fn(&KeyedCell<D>) -> u64 + Sync,
{
    let p = engine.p();
    let (search, splitters, achieved) = engine.phase(PHASE_SPLITTER, |engine| {
        let mut search = SplitterSearch::new_weighted(engine, &mut dist, &weight);
        let tol_units = opts.tolerance * (search.n as f64 / p as f64);
        loop {
            let mut violating = search.pending_splits(p, tol_units, opts.max_level);
            if violating.is_empty() {
                break;
            }
            if let Some(k) = opts.max_split_per_round {
                violating.truncate((k / (1 << D)).max(1));
            }
            search.refine_round_weighted(engine, &mut dist, &violating, &weight);
        }
        let (splitters, achieved) = search.choose_splitters(p);
        (search, splitters, achieved)
    });
    let out = exchange_and_sort(engine, dist, &splitters, opts.alltoall);

    // Report in weight units.
    let mut tmp = out.clone();
    let weights: Vec<u64> = engine.compute_map(&mut tmp, |_r, buf| {
        (buf.len() as f64 * 8.0, buf.iter().map(&weight).sum::<u64>())
    });
    let wmax = weights.iter().copied().max().unwrap_or(0);
    let wmin = weights.iter().copied().min().unwrap_or(0);
    let lambda = if wmax == 0 {
        1.0
    } else if wmin == 0 {
        f64::INFINITY
    } else {
        wmax as f64 / wmin as f64
    };
    PartitionOutcome {
        dist: out,
        splitters,
        report: PartitionReport {
            rounds: search.rounds,
            splitter_level: search.max_level(),
            achieved_tolerance: achieved,
            counts: weights,
            lambda,
            wmax,
            cmax: 0,
            predicted_tp: 0.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optipart_machine::{AppModel, MachineModel, PerfModel};
    use optipart_octree::{Distribution, MeshParams};
    use optipart_sfc::Curve;

    fn engine(p: usize) -> Engine {
        Engine::new(
            p,
            PerfModel::new(MachineModel::titan(), AppModel::laplacian_matvec()),
        )
    }

    fn mesh(n: usize, seed: u64, curve: Curve) -> LinearTree<3> {
        MeshParams {
            num_points: n,
            seed,
            ..Default::default()
        }
        .build(curve)
    }

    /// Partitioned output must be the globally sorted input.
    #[test]
    fn partition_produces_global_sfc_order() {
        for curve in Curve::ALL {
            let tree = mesh(1500, 3, curve);
            let mut expected: Vec<KeyedCell<3>> = tree.leaves().to_vec();
            expected.sort_unstable();

            let mut e = engine(8);
            let input = distribute_tree(&tree, 8);
            let out = treesort_partition(&mut e, input, PartitionOptions::exact());
            assert_eq!(out.dist.concat(), expected, "{curve}");
            // Ownership is consistent with the splitters.
            for (r, buf) in out.dist.parts().iter().enumerate() {
                for kc in buf {
                    assert_eq!(owner_of(&out.splitters, &kc.key), r);
                }
            }
        }
    }

    #[test]
    fn exact_partition_is_balanced() {
        let tree = mesh(4000, 5, Curve::Hilbert);
        let n = tree.len();
        let mut e = engine(16);
        let out = treesort_partition(
            &mut e,
            distribute_tree(&tree, 16),
            PartitionOptions::exact(),
        );
        let grain = n as f64 / 16.0;
        for &c in &out.report.counts {
            assert!(
                (c as f64 - grain).abs() <= grain * 0.02 + 1.0,
                "count {c} far from grain {grain}"
            );
        }
        assert!(out.report.lambda < 1.05, "λ = {}", out.report.lambda);
    }

    #[test]
    fn tolerance_relaxes_balance_and_saves_rounds() {
        let tree = mesh(4000, 7, Curve::Hilbert);
        let mut e0 = engine(16);
        let exact = treesort_partition(
            &mut e0,
            distribute_tree(&tree, 16),
            PartitionOptions::exact(),
        );
        let mut e1 = engine(16);
        let loose = treesort_partition(
            &mut e1,
            distribute_tree(&tree, 16),
            PartitionOptions::with_tolerance(0.3),
        );
        assert!(loose.report.rounds <= exact.report.rounds);
        assert!(loose.report.splitter_level <= exact.report.splitter_level);
        assert!(loose.report.achieved_tolerance <= 0.3 + 1e-9);
        // Both must still contain all elements.
        assert_eq!(loose.dist.total_len(), tree.len());
        assert_eq!(exact.dist.total_len(), tree.len());
        // λ within the promise: each boundary within tol·N/p of its target,
        // so partition sizes lie in N/p ± 2·tol·N/p ⇒ λ ≤ (1+2t)/(1−2t).
        assert!(loose.report.lambda <= (1.0 + 0.6) / (1.0 - 0.6) + 0.1);
    }

    #[test]
    fn staged_splitter_selection_matches_unstaged() {
        let tree = mesh(2000, 11, Curve::Morton);
        let mut e0 = engine(8);
        let full = treesort_partition(
            &mut e0,
            distribute_tree(&tree, 8),
            PartitionOptions::exact(),
        );
        let mut e1 = engine(8);
        let staged = treesort_partition(
            &mut e1,
            distribute_tree(&tree, 8),
            PartitionOptions {
                max_split_per_round: Some(8),
                ..PartitionOptions::exact()
            },
        );
        assert_eq!(full.dist.concat(), staged.dist.concat());
        assert!(
            staged.report.rounds >= full.report.rounds,
            "staging takes more rounds"
        );
    }

    #[test]
    fn phases_are_recorded() {
        let tree = mesh(1000, 2, Curve::Hilbert);
        let mut e = engine(4);
        // Rotate the even distribution so the exchange actually moves
        // every element — a no-op exchange is free under the sparse
        // hypercube default (no active links ⇒ no charge), so an
        // in-place input would legitimately record zero all2all time.
        let mut parts = distribute_tree(&tree, 4).into_parts();
        parts.rotate_left(1);
        let _ = treesort_partition(
            &mut e,
            DistVec::from_parts(parts),
            PartitionOptions::exact(),
        );
        assert!(e.phase_time(PHASE_SPLITTER) > 0.0);
        assert!(e.phase_time(PHASE_ALL2ALL) > 0.0);
        assert!(e.phase_time(PHASE_LOCAL_SORT) > 0.0);
    }

    #[test]
    fn works_across_distributions() {
        for dist in Distribution::ALL {
            let tree = MeshParams {
                distribution: dist,
                num_points: 1200,
                seed: 13,
                ..Default::default()
            }
            .build::<3>(Curve::Hilbert);
            let mut e = engine(8);
            let out =
                treesort_partition(&mut e, distribute_tree(&tree, 8), PartitionOptions::exact());
            assert_eq!(out.dist.total_len(), tree.len(), "{}", dist.name());
            assert!(
                out.report.lambda < 1.1,
                "{}: λ = {}",
                dist.name(),
                out.report.lambda
            );
        }
    }

    #[test]
    fn single_rank_partition_is_a_sort() {
        let tree = mesh(500, 1, Curve::Hilbert);
        let mut e = engine(1);
        let out = treesort_partition(&mut e, distribute_tree(&tree, 1), PartitionOptions::exact());
        let mut expected: Vec<KeyedCell<3>> = tree.leaves().to_vec();
        expected.sort_unstable();
        assert_eq!(out.dist.concat(), expected);
        assert!(out.splitters.is_empty());
    }

    #[test]
    fn owner_of_brackets_correctly() {
        let tree = mesh(800, 21, Curve::Hilbert);
        let mut e = engine(5);
        let out = treesort_partition(&mut e, distribute_tree(&tree, 5), PartitionOptions::exact());
        assert_eq!(out.splitters.len(), 4);
        assert_eq!(owner_of(&out.splitters, &SfcKey::MIN), 0);
        // Splitter keys themselves belong to the right-hand partition.
        for (i, s) in out.splitters.iter().enumerate() {
            assert_eq!(owner_of(&out.splitters, s), i + 1);
        }
    }

    #[test]
    fn weighted_partition_balances_weight_not_count() {
        // Spatially skewed weights (e.g. a physics kernel that is 50x more
        // expensive in one half of the domain): a weight-balanced partition
        // must have near-equal weight per rank and therefore markedly
        // *unequal* element counts.
        let tree = mesh(3000, 91, Curve::Hilbert);
        let p = 8;
        let w = |kc: &KeyedCell<3>| -> u64 {
            if kc.cell.anchor()[0] < 1 << 29 {
                50
            } else {
                1
            }
        };
        let mut e = engine(p);
        let out = treesort_partition_weighted(
            &mut e,
            distribute_tree(&tree, p),
            PartitionOptions::exact(),
            w,
        );
        // Weight balance within a few percent.
        assert!(out.report.lambda < 1.1, "weight λ = {}", out.report.lambda);
        // Element counts are NOT balanced (they vary with local depth).
        let counts = out.dist.counts();
        let cmax = *counts.iter().max().unwrap() as f64;
        let cmin = *counts.iter().min().unwrap() as f64;
        assert!(
            cmax / cmin > 2.0,
            "element counts suspiciously equal: {counts:?}"
        );
        // Still a permutation in SFC order.
        let mut expected: Vec<KeyedCell<3>> = tree.leaves().to_vec();
        expected.sort_unstable();
        assert_eq!(out.dist.concat(), expected);
    }

    #[test]
    fn unit_weights_match_unweighted() {
        let tree = mesh(1500, 93, Curve::Morton);
        let p = 6;
        let mut e1 = engine(p);
        let a = treesort_partition(
            &mut e1,
            distribute_tree(&tree, p),
            PartitionOptions::exact(),
        );
        let mut e2 = engine(p);
        let b = treesort_partition_weighted(
            &mut e2,
            distribute_tree(&tree, p),
            PartitionOptions::exact(),
            |_| 1u64,
        );
        assert_eq!(a.splitters, b.splitters);
        assert_eq!(a.dist.concat(), b.dist.concat());
    }

    #[test]
    fn empty_input_partitions_cleanly() {
        let mut e = engine(4);
        let input: DistVec<KeyedCell<3>> = DistVec::new(4);
        let out = treesort_partition(&mut e, input, PartitionOptions::exact());
        assert_eq!(out.dist.total_len(), 0);
        assert_eq!(out.report.rounds, 0);
    }
}
