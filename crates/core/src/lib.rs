//! # optipart-core — the HPDC'17 partitioning algorithms
//!
//! This crate implements the paper's contribution on top of the substrates:
//!
//! * [`treesort`] — **Algorithm 1**: sequential TreeSort, the MSD-radix /
//!   top-down-octree reformulation of SFC ordering (§2.1).
//! * [`partition`] — **distributed TreeSort** (§3.1): breadth-first splitter
//!   refinement by global bucket-count reductions (no comparisons), with a
//!   user **tolerance** on the load balance (§3.2) and staged splitter
//!   selection (Eq. 2), followed by the staged all-to-all exchange and a
//!   local TreeSort.
//! * [`quality`] — **Algorithm 2** (`PartitionQuality`): estimates a
//!   candidate partition's `Wmax` and `Cmax` with one linear pass plus two
//!   max-reductions, and predicts its runtime via Eq. (3).
//! * [`optipart()`] — **Algorithm 3** (`OptiPart`): distributed TreeSort that
//!   refines only while the predicted runtime of the *next* refinement
//!   improves — discovering the optimal tolerance automatically for the
//!   given machine and application.
//! * [`samplesort`] — the baseline: Morton + SampleSort partitioning as in
//!   Dendro (§5.2), for the comparison figures.
//! * [`metrics`] — partition-quality analysis: load/communication imbalance,
//!   partition boundary surface, the communication matrix `M` and its NNZ
//!   (§5.5).

pub mod histogramsort;
pub mod metrics;
pub mod optipart;
pub mod partition;
pub mod quality;
pub mod samplesort;
pub mod threaded;
pub mod treesort;

pub use histogramsort::histogramsort_partition;
pub use optipart::{
    optipart, optipart_survivors, optipart_survivors_with_state, optipart_with_state,
    OptiPartOptions, PartitionState, WarmStats, DEFAULT_STATE_CAP,
};
pub use partition::{
    distribute_shuffled, distribute_tree, treesort_partition, treesort_partition_weighted,
    PartitionOptions, PartitionOutcome, PartitionReport,
};
pub use quality::partition_quality;
pub use samplesort::{samplesort_partition, SampleSortOptions};

// Property-test suites need the external `proptest` crate, which the
// offline tier-1 build cannot fetch; enable with `--features proptest`
// once a vendored copy is available.
#[cfg(all(test, feature = "proptest"))]
mod proptests;
