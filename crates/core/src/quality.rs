//! PartitionQuality — Algorithm 2 of the paper.
//!
//! Estimates the runtime a *candidate* partition (given by splitters) would
//! deliver, without moving any data: one linear pass over the local elements
//! counts those on partition boundaries (`computeLocalBdyOctants`), the
//! partition sizes follow from the same pass, and two all-reduces yield
//! `Wmax` and `Cmax` for Eq. (3).
//!
//! A cell is a *boundary octant* of its partition if any of its `2D`
//! same-size face neighbours falls into a different partition — exactly the
//! cells whose data must be ghosted for a face-stencil application, so their
//! count is the communication-volume proxy the performance model consumes.

use crate::partition::owner_of;
use optipart_mpisim::{DistVec, Engine};
use optipart_sfc::{Curve, KeyedCell, SfcKey};

/// Result of a quality evaluation.
#[derive(Clone, Copy, Debug)]
pub struct Quality {
    /// Maximum elements owned by any partition.
    pub wmax: u64,
    /// Boundary octants of the *critical* partition (the `Cmax` proxy).
    /// On a flat (or degenerate-hierarchy) machine the critical partition
    /// is simply the one with the most boundary octants; on a two-level
    /// machine it is the one with the largest `tw`-weighted exchange
    /// `tw·inter + tw_intra·intra`, which is what Eq. (3) actually charges.
    pub cmax: u64,
    /// Of the `Cmax` partition's boundary octants, those whose every
    /// foreign neighbour partition lives on the same node — exchanged over
    /// the cheap intra-node fabric under a hierarchical machine. Always
    /// `<= cmax`; ties in the `Cmax` argmax break toward the lowest
    /// partition index.
    pub cmax_intra: u64,
    /// Global boundary octants summed over all partitions.
    pub c_total: u64,
    /// Of [`Quality::c_total`], the octants whose every foreign neighbour
    /// is on-node. `c_total − c_intra_total` is the inter-node surface the
    /// two-level model penalises.
    pub c_intra_total: u64,
    /// Maximum number of distinct neighbouring partitions any partition
    /// talks to (message-count proxy; locally estimated, see
    /// [`partition_quality`]).
    pub mmax: u64,
    /// Predicted runtime `Tp = α·tc·Wmax + tw·Cmax` (Eq. 3), with the
    /// intra-node discount `(tw_intra − tw)·Cmax_intra` applied when the
    /// machine carries a hierarchy.
    pub tp: f64,
}

impl Quality {
    /// Eq. (3) extended with a per-message latency term,
    /// `Tp + ts·Mmax` — the "additional information about the machine"
    /// the paper's future-work section calls for. Useful on
    /// high-latency interconnects where message count rivals volume.
    pub fn tp_with_latency(&self, ts: f64) -> f64 {
        self.tp + ts * self.mmax as f64
    }
}

/// Evaluates the quality of candidate `splitters` for the (still
/// block-distributed) data — Algorithm 2.
///
/// Every rank classifies its local elements into future partitions and
/// counts sizes and boundary octants per partition; vector all-reduces
/// produce the global per-partition totals, whose maxima feed Eq. (3).
pub fn partition_quality<const D: usize>(
    engine: &mut Engine,
    dist: &mut DistVec<KeyedCell<D>>,
    splitters: &[SfcKey],
    curve: Curve,
) -> Quality {
    let p = engine.p();
    assert_eq!(splitters.len(), p - 1, "need p-1 splitters");
    let elem_bytes = std::mem::size_of::<KeyedCell<D>>() as f64;
    // Partition → node placement mirrors the engine's rank placement. The
    // intra split is computed unconditionally (and reduced in the same
    // concatenated collective) so a flat machine and a degenerate hierarchy
    // see bit-identical clocks.
    let rpn = engine.perf().machine.ranks_per_node.max(1);

    // Line 1–2: one linear pass computing local boundary-octant (total and
    // all-neighbours-on-node) and size contributions per future partition.
    let local: Vec<(Vec<u64>, Vec<u64>, Vec<u64>)> = engine.compute_map(dist, |_r, buf| {
        // bdy packs [bdy_total ++ bdy_intra], length 2p.
        let mut bdy = vec![0u64; 2 * p];
        let mut sz = vec![0u64; p];
        // Locally observed neighbour-partition sets, as flat bitsets only
        // for the partitions this rank holds elements of (cheap: a rank's
        // block maps to a handful of partitions).
        let mut nbr_sets: std::collections::HashMap<usize, std::collections::HashSet<usize>> =
            std::collections::HashMap::new();
        for kc in buf.iter() {
            let own = owner_of(splitters, &kc.key);
            sz[own] += 1;
            let mut is_bdy = false;
            let mut off_node = false;
            for axis in 0..D {
                for dir in [-1i8, 1] {
                    if let Some(nb) = kc.cell.face_neighbor(axis, dir) {
                        let nk = SfcKey::of(&nb, curve);
                        let other = owner_of(splitters, &nk);
                        if other != own {
                            is_bdy = true;
                            if other / rpn != own / rpn {
                                off_node = true;
                            }
                            nbr_sets.entry(own).or_default().insert(other);
                        }
                    }
                }
            }
            if is_bdy {
                bdy[own] += 1;
                if !off_node {
                    bdy[p + own] += 1;
                }
            }
        }
        let mut nbrs = vec![0u64; p];
        for (part, set) in nbr_sets {
            nbrs[part] = set.len() as u64;
        }
        // One pass over elements + 2D neighbour probes.
        (
            buf.len() as f64 * elem_bytes * (1.0 + 2.0 * D as f64),
            (bdy, sz, nbrs),
        )
    });

    // Lines 3–4: ReduceAll to global per-partition vectors, take maxima.
    let bdy_contrib: Vec<Vec<u64>> = local.iter().map(|(b, _, _)| b.clone()).collect();
    let sz_contrib: Vec<Vec<u64>> = local.iter().map(|(_, s, _)| s.clone()).collect();
    let nbr_contrib: Vec<Vec<u64>> = local.into_iter().map(|(_, _, n)| n).collect();
    let bdy = engine.allreduce_sum_vec_u64(&bdy_contrib);
    let sz = engine.allreduce_sum_vec_u64(&sz_contrib);
    // Neighbour sets observed by different source ranks overlap, so neither
    // a sum (overcounts, increasingly for larger partitions) nor a max
    // (undercounts for scattered inputs) is exact; the max is the less
    // biased choice for the near-sorted inputs the refinement loop sees.
    let nbrs = engine.allreduce_max_vec_u64(&nbr_contrib);
    // Split the concatenated reduce back into [total | intra]; the Cmax
    // argmax (strict >, lowest index on ties) carries its intra count along.
    // On a two-level machine the critical partition is the one whose
    // *weighted* exchange `tw·inter + tw_intra·intra` is largest — an
    // interior partition with a big but all-on-node surface is not the
    // bottleneck when on-node bytes are nearly free. The weight ratio is
    // exactly 1.0 for a degenerate hierarchy (and for no hierarchy), where
    // `(total − intra) + 1.0·intra` reproduces the unweighted total bit for
    // bit, so the flattening contract is preserved.
    let tw = engine.perf().machine.tw;
    let ratio = match &engine.perf().machine.hierarchy {
        Some(h) if tw > 0.0 => h.tw_intra / tw,
        _ => 1.0,
    };
    let mut cmax = 0u64;
    let mut cmax_intra = 0u64;
    let mut cmax_weighted = f64::NEG_INFINITY;
    let mut c_total = 0u64;
    let mut c_intra_total = 0u64;
    for i in 0..p {
        let weighted = (bdy[i] - bdy[p + i]) as f64 + ratio * bdy[p + i] as f64;
        if weighted > cmax_weighted {
            cmax_weighted = weighted;
            cmax = bdy[i];
            cmax_intra = bdy[p + i];
        }
        c_total += bdy[i];
        c_intra_total += bdy[p + i];
    }
    let wmax = sz.into_iter().max().unwrap_or(0);
    let mmax = nbrs.into_iter().max().unwrap_or(0);

    // Line 5: the performance model (hierarchy-aware; degenerates to
    // Eq. (3) exactly on a flat machine).
    let tp = engine.perf().predict_hier(wmax, cmax, cmax_intra);
    Quality {
        wmax,
        cmax,
        cmax_intra,
        c_total,
        c_intra_total,
        mmax,
        tp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{distribute_tree, treesort_partition, PartitionOptions};
    use optipart_machine::{AppModel, MachineModel, PerfModel};
    use optipart_octree::MeshParams;
    use optipart_sfc::Curve;

    fn engine(p: usize) -> Engine {
        Engine::new(
            p,
            PerfModel::new(
                MachineModel::cloudlab_wisconsin(),
                AppModel::laplacian_matvec(),
            ),
        )
    }

    #[test]
    fn quality_reflects_balance() {
        let tree = MeshParams::normal(3000, 17).build::<3>(Curve::Hilbert);
        let p = 8;
        let mut e = engine(p);
        let out = treesort_partition(&mut e, distribute_tree(&tree, p), PartitionOptions::exact());
        let mut dist = distribute_tree(&tree, p);
        let q = partition_quality(&mut e, &mut dist, &out.splitters, Curve::Hilbert);
        let grain = tree.len() as u64 / p as u64;
        assert!(q.wmax >= grain);
        assert!(q.wmax <= grain * 2, "wmax {} vs grain {grain}", q.wmax);
        assert!(q.cmax > 0, "partitions must have boundaries");
        assert!(
            q.cmax <= q.wmax,
            "boundary octants are a subset of owned octants"
        );
        assert!(q.tp > 0.0);
    }

    #[test]
    fn coarser_splitters_trade_imbalance_for_surface() {
        // The §3.2 trade-off: a loose tolerance aligns partitions to coarse
        // subtree boundaries, so each partition carries *less boundary per
        // owned element* — at the price of a larger Wmax. Absolute Cmax is
        // noisy across instances (bigger partitions have more surface), so
        // assert the density, which is the claim that actually generalises.
        for seed in [23u64, 7, 42] {
            let tree = MeshParams::normal(6000, seed).build::<3>(Curve::Hilbert);
            let p = 16;
            let exact = {
                let mut e = engine(p);
                treesort_partition(&mut e, distribute_tree(&tree, p), PartitionOptions::exact())
            };
            let loose = {
                let mut e = engine(p);
                treesort_partition(
                    &mut e,
                    distribute_tree(&tree, p),
                    PartitionOptions::with_tolerance(0.5),
                )
            };
            let mut e = engine(p);
            let mut d0 = distribute_tree(&tree, p);
            let q_exact = partition_quality(&mut e, &mut d0, &exact.splitters, Curve::Hilbert);
            let mut d1 = distribute_tree(&tree, p);
            let q_loose = partition_quality(&mut e, &mut d1, &loose.splitters, Curve::Hilbert);
            assert!(
                q_loose.wmax > q_exact.wmax,
                "loose tolerance must relax balance"
            );
            let density = |q: &Quality| q.cmax as f64 / q.wmax as f64;
            assert!(
                density(&q_loose) < density(&q_exact),
                "seed {seed}: loose boundary density {} vs exact {}",
                density(&q_loose),
                density(&q_exact)
            );
            // And the absolute boundary must not blow up either.
            assert!(
                q_loose.cmax as f64 <= q_exact.cmax as f64 * 1.25,
                "seed {seed}: loose cmax {} vs exact {}",
                q_loose.cmax,
                q_exact.cmax
            );
        }
    }

    #[test]
    fn quality_matches_direct_count() {
        // Cross-check Algorithm 2 against a brute-force global count.
        let tree = MeshParams::normal(1000, 29).build::<3>(Curve::Morton);
        let p = 4;
        let mut e = engine(p);
        let out = treesort_partition(&mut e, distribute_tree(&tree, p), PartitionOptions::exact());
        let mut dist = distribute_tree(&tree, p);
        let q = partition_quality(&mut e, &mut dist, &out.splitters, Curve::Morton);

        let mut sizes = vec![0u64; p];
        let mut bdy = vec![0u64; p];
        for kc in tree.leaves() {
            let own = owner_of(&out.splitters, &kc.key);
            sizes[own] += 1;
            let mut is_bdy = false;
            for axis in 0..3 {
                for dir in [-1i8, 1] {
                    if let Some(nb) = kc.cell.face_neighbor(axis, dir) {
                        let nk = SfcKey::of(&nb, Curve::Morton);
                        if owner_of(&out.splitters, &nk) != own {
                            is_bdy = true;
                        }
                    }
                }
            }
            if is_bdy {
                bdy[own] += 1;
            }
        }
        assert_eq!(q.wmax, sizes.into_iter().max().unwrap());
        assert_eq!(q.cmax, bdy.into_iter().max().unwrap());
    }

    #[test]
    #[should_panic]
    fn wrong_splitter_count_panics() {
        let mut e = engine(4);
        let mut d: DistVec<KeyedCell<3>> = DistVec::new(4);
        let _ = partition_quality(&mut e, &mut d, &[], Curve::Morton);
    }
}
