//! Sequential TreeSort — Algorithm 1 of the paper.
//!
//! An MSD radix sort over SFC key digits, equivalent to a top-down
//! quadtree/octree construction (Fig. 1 of the paper). Each recursion level
//! buckets the elements by `child_num` permuted into curve order — with
//! materialised keys (see `optipart-sfc`), that permuted child number *is*
//! the key digit at the level, so lines 3–4 of Algorithm 1 ("increment
//! counts[child_num(a)]; counts ← Rh(counts)") collapse into a digit
//! histogram.
//!
//! Cells whose own level equals the current split level are *parked* in a
//! leading bucket (the ancestor-first convention of linear octrees);
//! Algorithm 1's recursion then descends into each curve-ordered child
//! bucket ("TreeSort(Ai, l1 − 1, l2)").

use optipart_sfc::{KeyedCell, MAX_DEPTH};

/// Buckets below this size switch to a comparison sort — the standard MSD
/// radix cutoff (the asymptotics of Algorithm 1 are unaffected; this is the
/// "local sort" constant-factor engineering every radix implementation does).
const SMALL_CUTOFF: usize = 48;

/// Sorts cells into SFC order (ancestor-first) with TreeSort.
///
/// Equivalent to `a.sort_unstable()` on keyed cells, but top-down by digit,
/// which is what gives the *distributed* variant its induced partitions.
pub fn treesort<const D: usize>(a: &mut [KeyedCell<D>]) {
    treesort_levels(a, 0, MAX_DEPTH);
}

/// Sorts by digits in split levels `[l1, l2)` only — the
/// `TreeSort(A, l1, l2)` of Algorithm 1 (levels here count downward from the
/// root; the paper counts upward from the leaves).
///
/// Elements must already agree on digits above `l1` (they share a bucket).
pub fn treesort_levels<const D: usize>(a: &mut [KeyedCell<D>], l1: u8, l2: u8) {
    let l2 = l2.min(MAX_DEPTH);
    if l1 >= l2 || a.len() <= 1 {
        return;
    }
    if a.len() <= SMALL_CUTOFF {
        a.sort_unstable();
        return;
    }
    let nc = 1usize << D;
    // Bucket 0 holds parked ancestors (cells at level ≤ l1); buckets
    // 1..=2^D hold the curve-ordered children (Rh-permuted child numbers).
    let nb = nc + 1;
    let bucket_of = |kc: &KeyedCell<D>| -> usize {
        if kc.key.level() <= l1 {
            0
        } else {
            1 + kc.key.digit::<D>(l1)
        }
    };

    // counts / scan / permute — lines 1–11 of Algorithm 1.
    let mut counts = [0usize; 9]; // nb ≤ 9 for D ≤ 3
    debug_assert!(nb <= counts.len());
    for kc in a.iter() {
        counts[bucket_of(kc)] += 1;
    }
    let mut offsets = [0usize; 10];
    for i in 0..nb {
        offsets[i + 1] = offsets[i] + counts[i];
    }
    let mut scratch = a.to_vec();
    let mut cursor = offsets;
    for kc in a.iter() {
        let b = bucket_of(kc);
        scratch[cursor[b]] = *kc;
        cursor[b] += 1;
    }
    a.copy_from_slice(&scratch);

    // Parked ancestors order among themselves by (path, level).
    a[offsets[0]..offsets[1]].sort_unstable();

    // Recurse into child buckets — line 14.
    for i in 1..nb {
        treesort_levels(&mut a[offsets[i]..offsets[i + 1]], l1 + 1, l2);
    }
}

/// The induced partition boundaries of a TreeSort at a given level: the
/// element index at which each level-`l` bucket starts. These are the
/// partitions §3.2 trades against — coarser levels give fewer, chunkier
/// buckets with smaller surface.
pub fn bucket_offsets_at_level<const D: usize>(sorted: &[KeyedCell<D>], level: u8) -> Vec<usize> {
    let mut offsets = Vec::new();
    let mut prev: Option<u128> = None;
    for (i, kc) in sorted.iter().enumerate() {
        let prefix = kc.key.prefix::<D>(level).path();
        if prev != Some(prefix) {
            offsets.push(i);
            prev = Some(prefix);
        }
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;
    use optipart_mpisim::rng::SplitMix64;
    use optipart_octree::generate::Distribution;
    use optipart_octree::{sample_points, tree_from_points};
    use optipart_sfc::{Cell3, Curve, KeyedCell};

    fn shuffled_mesh(n: usize, seed: u64, curve: Curve) -> Vec<KeyedCell<3>> {
        let pts = sample_points::<3>(Distribution::Normal, n, seed);
        let tree = tree_from_points(&pts, 1, 12, curve);
        let mut cells: Vec<KeyedCell<3>> = tree.leaves().to_vec();
        SplitMix64::new(seed ^ 0xDEAD).shuffle(&mut cells);
        cells
    }

    #[test]
    fn treesort_matches_comparison_sort() {
        for curve in Curve::ALL {
            for seed in [1u64, 2, 3] {
                let mut a = shuffled_mesh(700, seed, curve);
                let mut expected = a.clone();
                expected.sort_unstable();
                treesort(&mut a);
                assert_eq!(a, expected, "{curve} seed {seed}");
            }
        }
    }

    #[test]
    fn treesort_handles_mixed_levels_with_ancestors() {
        // Non-linear input containing ancestors and descendants together.
        let parent = Cell3::new([1 << 29, 0, 0], 3);
        let mut cells = vec![parent];
        for c in parent.children() {
            cells.push(c);
            for g in c.children() {
                cells.push(g);
            }
        }
        for curve in Curve::ALL {
            let mut keyed = KeyedCell::key_all(&cells, curve);
            let mut expected = keyed.clone();
            expected.sort_unstable();
            treesort(&mut keyed);
            assert_eq!(keyed, expected, "{curve}");
            // Ancestor-first: parent precedes every child.
            let pi = keyed.iter().position(|kc| kc.cell == parent).unwrap();
            assert_eq!(pi, 0);
        }
    }

    #[test]
    fn treesort_small_and_empty_inputs() {
        let mut empty: Vec<KeyedCell<3>> = vec![];
        treesort(&mut empty);
        let mut one = KeyedCell::key_all(&[Cell3::root()], Curve::Morton);
        treesort(&mut one);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn partial_levels_only_group_prefixes() {
        // Sorting only levels [0, 2) groups elements by their level-2
        // ancestor without ordering inside groups.
        let mut a = shuffled_mesh(500, 9, Curve::Hilbert);
        treesort_levels(&mut a, 0, 2);
        let prefixes: Vec<u128> = a.iter().map(|kc| kc.key.prefix::<3>(2).path()).collect();
        // Prefixes must be non-decreasing (grouped in curve order).
        assert!(prefixes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn bucket_offsets_partition_the_array() {
        let mut a = shuffled_mesh(600, 4, Curve::Hilbert);
        treesort(&mut a);
        for level in [1u8, 2, 3] {
            let offs = bucket_offsets_at_level(&a, level);
            assert_eq!(offs[0], 0);
            assert!(offs.windows(2).all(|w| w[0] < w[1]));
            assert!(offs.len() <= 1 << (3 * level as usize));
            // Buckets get smaller (more numerous) with level — the λ vs s
            // trade of Fig. 2.
            if level > 1 {
                let prev = bucket_offsets_at_level(&a, level - 1);
                assert!(offs.len() >= prev.len());
            }
        }
    }

    #[test]
    fn treesort_is_idempotent() {
        let mut a = shuffled_mesh(300, 5, Curve::Morton);
        treesort(&mut a);
        let once = a.clone();
        treesort(&mut a);
        assert_eq!(a, once);
    }
}
