//! Sequential TreeSort — Algorithm 1 of the paper.
//!
//! An MSD radix sort over SFC key digits, equivalent to a top-down
//! quadtree/octree construction (Fig. 1 of the paper). Each recursion level
//! buckets the elements by `child_num` permuted into curve order — with
//! materialised keys (see `optipart-sfc`), that permuted child number *is*
//! the key digit at the level, so lines 3–4 of Algorithm 1 ("increment
//! counts[child_num(a)]; counts ← Rh(counts)") collapse into a digit
//! histogram.
//!
//! Cells whose own level equals the current split level are *parked* in a
//! leading bucket (the ancestor-first convention of linear octrees);
//! Algorithm 1's recursion then descends into each curve-ordered child
//! bucket ("TreeSort(Ai, l1 − 1, l2)").
//!
//! # Hot-path engineering
//!
//! The scatter phase ping-pongs between the input slice and a single
//! scratch buffer allocated once per top-level sort: a recursion whose data
//! lives in `a` scatters into `scratch` and recurses with the roles
//! swapped, instead of allocating a fresh `to_vec()` copy and copying back
//! at every node of the recursion tree. Buckets at or above [`PAR_CUTOFF`]
//! recurse in parallel over disjoint child slices via
//! [`optipart_mpisim::par::par_map_mut_n`]; because the child slices are
//! disjoint and each is sorted independently, the output is bit-identical
//! for every thread count. The pre-optimisation implementation is retained
//! as [`treesort_reference`] (under `cfg(any(test, feature = "reference"))`)
//! so differential oracles can check bit-identity forever.

use optipart_mpisim::par;
use optipart_sfc::{KeyedCell, MAX_DEPTH};

/// Buckets below this size switch to a comparison sort — the standard MSD
/// radix cutoff (the asymptotics of Algorithm 1 are unaffected; this is the
/// "local sort" constant-factor engineering every radix implementation does).
const SMALL_CUTOFF: usize = 48;

/// Buckets at or above this size fan their child-bucket recursions out over
/// worker threads; smaller buckets recurse sequentially (thread spawn costs
/// more than the sort). Exposed so boundary tests and corpus seeds can pin
/// workloads just above/below the threshold.
pub const PAR_CUTOFF: usize = 2048;

/// Sorts cells into SFC order (ancestor-first) with TreeSort.
///
/// Equivalent to `a.sort_unstable()` on keyed cells, but top-down by digit,
/// which is what gives the *distributed* variant its induced partitions.
/// Allocates one scratch buffer; use [`treesort_with_scratch`] to reuse a
/// buffer across calls and make the steady state allocation-free.
pub fn treesort<const D: usize>(a: &mut [KeyedCell<D>]) {
    let mut scratch = Vec::new();
    treesort_scoped(a, &mut scratch, 0, MAX_DEPTH, par::num_threads());
}

/// [`treesort`] with an explicit thread budget (1 = fully sequential) —
/// the output is bit-identical for every budget.
pub fn treesort_threaded<const D: usize>(a: &mut [KeyedCell<D>], threads: usize) {
    let mut scratch = Vec::new();
    treesort_scoped(a, &mut scratch, 0, MAX_DEPTH, threads);
}

/// [`treesort`] reusing a caller-owned scratch buffer: grown to `a.len()`
/// on first use, never shrunk — repeated sorts of same-or-smaller inputs
/// allocate nothing.
pub fn treesort_with_scratch<const D: usize>(
    a: &mut [KeyedCell<D>],
    scratch: &mut Vec<KeyedCell<D>>,
) {
    treesort_scoped(a, scratch, 0, MAX_DEPTH, par::num_threads());
}

/// Explicit thread budget *and* caller-owned scratch — the bench runner's
/// allocation-free single-thread configuration.
pub fn treesort_threaded_with_scratch<const D: usize>(
    a: &mut [KeyedCell<D>],
    scratch: &mut Vec<KeyedCell<D>>,
    threads: usize,
) {
    treesort_scoped(a, scratch, 0, MAX_DEPTH, threads);
}

/// Sorts by digits in split levels `[l1, l2)` only — the
/// `TreeSort(A, l1, l2)` of Algorithm 1 (levels here count downward from the
/// root; the paper counts upward from the leaves).
///
/// Elements must already agree on digits above `l1` (they share a bucket).
pub fn treesort_levels<const D: usize>(a: &mut [KeyedCell<D>], l1: u8, l2: u8) {
    let mut scratch = Vec::new();
    treesort_scoped(a, &mut scratch, l1, l2, par::num_threads());
}

/// Common entry: clamps levels, handles trivial sizes, sizes the scratch
/// buffer, and starts the in-place/out-of-place ping-pong.
fn treesort_scoped<const D: usize>(
    a: &mut [KeyedCell<D>],
    scratch: &mut Vec<KeyedCell<D>>,
    l1: u8,
    l2: u8,
    threads: usize,
) {
    let l2 = l2.min(MAX_DEPTH);
    if l1 >= l2 || a.len() <= 1 {
        return;
    }
    if a.len() <= SMALL_CUTOFF {
        a.sort_unstable();
        return;
    }
    if scratch.len() < a.len() {
        scratch.resize(a.len(), a[0]);
    }
    let n = a.len();
    sort_in_place(a, &mut scratch[..n], l1, l2, threads);
}

/// Level-`l1` bucket index: 0 parks ancestors (cells at level ≤ `l1`),
/// 1..=2^D are the curve-ordered children (Rh-permuted child numbers).
#[inline]
fn bucket_of<const D: usize>(kc: &KeyedCell<D>, l1: u8) -> usize {
    if kc.key.level() <= l1 {
        0
    } else {
        1 + kc.key.digit::<D>(l1)
    }
}

/// counts / scan / stable scatter of `src` into `dst` by level-`l1` bucket —
/// lines 1–11 of Algorithm 1. Returns the bucket offsets (`nb + 1` valid
/// entries for `nb = 2^D + 1` buckets). Writes every position of `dst`.
fn scatter<const D: usize>(src: &[KeyedCell<D>], dst: &mut [KeyedCell<D>], l1: u8) -> [usize; 10] {
    let nb = (1usize << D) + 1;
    let mut counts = [0usize; 9]; // nb ≤ 9 for D ≤ 3
    debug_assert!(nb <= counts.len());
    for kc in src {
        counts[bucket_of(kc, l1)] += 1;
    }
    let mut offsets = [0usize; 10];
    for i in 0..nb {
        offsets[i + 1] = offsets[i] + counts[i];
    }
    let mut cursor = offsets;
    for kc in src {
        let b = bucket_of(kc, l1);
        dst[cursor[b]] = *kc;
        cursor[b] += 1;
    }
    offsets
}

/// Carves matching child-bucket sub-slice pairs out of `x` and `y` (both
/// bucketed by the same `offsets`) into a caller-provided stack array —
/// no heap allocation on the parallel fan-out path. Skips the
/// parked-ancestor bucket 0 and empty buckets; returns the pair count
/// (≤ 2^D ≤ 8).
#[allow(clippy::type_complexity)]
fn child_pairs_into<'s, K>(
    x: &'s mut [K],
    y: &'s mut [K],
    offsets: &[usize; 10],
    nb: usize,
    out: &mut [Option<(&'s mut [K], &'s mut [K])>; 8],
) -> usize {
    let (_, mut rest_x) = x.split_at_mut(offsets[1]);
    let (_, mut rest_y) = y.split_at_mut(offsets[1]);
    let mut base = offsets[1];
    let mut n = 0usize;
    for i in 1..nb {
        let w = offsets[i + 1] - base;
        let (hx, tx) = rest_x.split_at_mut(w);
        let (hy, ty) = rest_y.split_at_mut(w);
        if w > 0 {
            out[n] = Some((hx, hy));
            n += 1;
        }
        rest_x = tx;
        rest_y = ty;
        base = offsets[i + 1];
    }
    n
}

/// Sorts `a` using `scratch` as the scatter target: data is in `a` on entry
/// *and* on exit. `a` and `scratch` have equal length.
fn sort_in_place<const D: usize>(
    a: &mut [KeyedCell<D>],
    scratch: &mut [KeyedCell<D>],
    l1: u8,
    l2: u8,
    threads: usize,
) {
    if l1 >= l2 || a.len() <= 1 {
        return;
    }
    if a.len() <= SMALL_CUTOFF {
        a.sort_unstable();
        return;
    }
    let nb = (1usize << D) + 1;
    let offsets = scatter(a, scratch, l1);
    // Parked ancestors come home and order among themselves by (path, level).
    a[offsets[0]..offsets[1]].copy_from_slice(&scratch[offsets[0]..offsets[1]]);
    a[offsets[0]..offsets[1]].sort_unstable();
    // Child buckets now live in `scratch`; each recursion sorts one back
    // into its `a` slice (line 14 of Algorithm 1, roles swapped per level).
    if threads > 1 && a.len() >= PAR_CUTOFF {
        let mut pairs: [Option<(&mut [KeyedCell<D>], &mut [KeyedCell<D>])>; 8] =
            [const { None }; 8];
        let np = child_pairs_into(scratch, a, &offsets, nb, &mut pairs);
        par::par_map_mut_n(threads, &mut pairs[..np], |_, p| {
            let (src, dst) = p.as_mut().expect("non-empty pair");
            sort_out_of_place(src, dst, l1 + 1, l2, 1);
        });
    } else {
        // `a` and `scratch` are disjoint slices, so the child ranges can be
        // indexed directly — the sequential path allocates nothing.
        for i in 1..nb {
            let (s, e) = (offsets[i], offsets[i + 1]);
            if e > s {
                sort_out_of_place(&mut scratch[s..e], &mut a[s..e], l1 + 1, l2, 1);
            }
        }
    }
}

/// Sorts `src` into `dst` (equal lengths): data is in `src` on entry and in
/// `dst` — fully written — on exit. `src` is clobbered (it becomes the
/// deeper levels' scratch).
fn sort_out_of_place<const D: usize>(
    src: &mut [KeyedCell<D>],
    dst: &mut [KeyedCell<D>],
    l1: u8,
    l2: u8,
    threads: usize,
) {
    if l1 >= l2 || src.len() <= SMALL_CUTOFF {
        dst.copy_from_slice(src);
        if l1 < l2 && dst.len() > 1 {
            dst.sort_unstable();
        }
        return;
    }
    let nb = (1usize << D) + 1;
    let offsets = scatter(src, dst, l1);
    dst[offsets[0]..offsets[1]].sort_unstable();
    if threads > 1 && dst.len() >= PAR_CUTOFF {
        let mut pairs: [Option<(&mut [KeyedCell<D>], &mut [KeyedCell<D>])>; 8] =
            [const { None }; 8];
        let np = child_pairs_into(dst, src, &offsets, nb, &mut pairs);
        par::par_map_mut_n(threads, &mut pairs[..np], |_, p| {
            let (a, scratch) = p.as_mut().expect("non-empty pair");
            sort_in_place(a, scratch, l1 + 1, l2, 1);
        });
    } else {
        for i in 1..nb {
            let (s, e) = (offsets[i], offsets[i + 1]);
            if e > s {
                sort_in_place(&mut dst[s..e], &mut src[s..e], l1 + 1, l2, 1);
            }
        }
    }
}

/// The pre-optimisation TreeSort, retained verbatim as the differential
/// oracle's ground truth: per-recursion `to_vec()` scratch, sequential
/// child recursion. The optimised sort must stay bit-identical to this.
#[cfg(any(test, feature = "reference"))]
pub fn treesort_reference<const D: usize>(a: &mut [KeyedCell<D>]) {
    treesort_levels_reference(a, 0, MAX_DEPTH);
}

/// Level-windowed form of [`treesort_reference`].
#[cfg(any(test, feature = "reference"))]
pub fn treesort_levels_reference<const D: usize>(a: &mut [KeyedCell<D>], l1: u8, l2: u8) {
    let l2 = l2.min(MAX_DEPTH);
    if l1 >= l2 || a.len() <= 1 {
        return;
    }
    if a.len() <= SMALL_CUTOFF {
        a.sort_unstable();
        return;
    }
    let nb = (1usize << D) + 1;
    let mut counts = [0usize; 9];
    debug_assert!(nb <= counts.len());
    for kc in a.iter() {
        counts[bucket_of(kc, l1)] += 1;
    }
    let mut offsets = [0usize; 10];
    for i in 0..nb {
        offsets[i + 1] = offsets[i] + counts[i];
    }
    let mut scratch = a.to_vec();
    let mut cursor = offsets;
    for kc in a.iter() {
        let b = bucket_of(kc, l1);
        scratch[cursor[b]] = *kc;
        cursor[b] += 1;
    }
    a.copy_from_slice(&scratch);
    a[offsets[0]..offsets[1]].sort_unstable();
    for i in 1..nb {
        treesort_levels_reference(&mut a[offsets[i]..offsets[i + 1]], l1 + 1, l2);
    }
}

/// The induced partition boundaries of a TreeSort at a given level: the
/// element index at which each level-`l` bucket starts. These are the
/// partitions §3.2 trades against — coarser levels give fewer, chunkier
/// buckets with smaller surface.
///
/// For a single level this scans once; when several levels are needed,
/// [`LevelOffsets`] builds every table in one pass instead.
pub fn bucket_offsets_at_level<const D: usize>(sorted: &[KeyedCell<D>], level: u8) -> Vec<usize> {
    let mut offsets = Vec::new();
    let mut prev: Option<u128> = None;
    for (i, kc) in sorted.iter().enumerate() {
        let prefix = kc.key.prefix::<D>(level).path();
        if prev != Some(prefix) {
            offsets.push(i);
            prev = Some(prefix);
        }
    }
    offsets
}

/// Bucket-offset tables for every level `0..=max_level` of a sorted array,
/// built in **one pass** instead of one [`bucket_offsets_at_level`] rescan
/// per level.
///
/// For each adjacent pair the XOR of the key paths locates the most
/// significant differing digit; a bucket boundary exists at exactly the
/// levels deep enough to see that digit. Keys store no digits below their
/// own level (they are zero by construction), which makes the raw path XOR
/// agree with the clamped `prefix(level)` comparison the per-level scan
/// performs.
#[derive(Clone, Debug)]
pub struct LevelOffsets {
    per_level: Vec<Vec<usize>>,
}

impl LevelOffsets {
    /// Builds the tables for levels `0..=max_level` of `sorted`.
    pub fn build<const D: usize>(sorted: &[KeyedCell<D>], max_level: u8) -> LevelOffsets {
        let max_level = max_level.min(MAX_DEPTH) as usize;
        let mut per_level: Vec<Vec<usize>> = vec![Vec::new(); max_level + 1];
        if sorted.is_empty() {
            return LevelOffsets { per_level };
        }
        for table in per_level.iter_mut() {
            table.push(0);
        }
        for i in 1..sorted.len() {
            let z = sorted[i - 1].key.path() ^ sorted[i].key.path();
            if z == 0 {
                continue;
            }
            // Highest differing bit hb lies in the digit of level
            // `MAX_DEPTH − 1 − hb/D`; every level below (numerically ≥
            // `MAX_DEPTH − hb/D`... i.e. deep enough that its prefix
            // includes that digit) starts a new bucket here.
            let hb = 127 - z.leading_zeros() as usize;
            let l_min = MAX_DEPTH as usize - hb / D;
            for table in per_level.iter_mut().skip(l_min) {
                table.push(i);
            }
        }
        LevelOffsets { per_level }
    }

    /// The deepest level a table was built for.
    pub fn max_level(&self) -> u8 {
        (self.per_level.len() - 1) as u8
    }

    /// The offset table for `level` — identical to
    /// `bucket_offsets_at_level(sorted, level)`.
    pub fn at(&self, level: u8) -> &[usize] {
        &self.per_level[level as usize]
    }
}

/// Per-leaf element populations of `buf` over an octree-aligned leaf
/// tiling — `(path, level)` pairs sorted by path, spanning the whole key
/// domain (the final bucket tiling a splitter search leaves behind).
///
/// When `buf` is already SFC-sorted — the steady state of an AMR loop —
/// the counts come from binary searches over the [`LevelOffsets`] jump
/// tables: one `build` pass plus `O(log)` lookups per leaf, never a
/// per-element re-scan. Unsorted input falls back to placing each element
/// by binary search over the leaf starts. This is the population diff
/// OptiPart's warm-start replay uses to find the buckets the refinement
/// front actually moved.
pub fn bucket_populations<const D: usize>(buf: &[KeyedCell<D>], leaves: &[(u128, u8)]) -> Vec<u64> {
    let mut counts = vec![0u64; leaves.len()];
    if buf.is_empty() || leaves.is_empty() {
        return counts;
    }
    debug_assert_eq!(leaves[0].0, 0, "leaf tiling must start at path 0");
    if buf.windows(2).any(|w| w[0].key.path() > w[1].key.path()) {
        for kc in buf {
            let i = leaves.partition_point(|&(p, _)| p <= kc.key.path());
            counts[i - 1] += 1;
        }
        return counts;
    }
    let max_level = leaves.iter().map(|&(_, l)| l).max().unwrap_or(0);
    let table = LevelOffsets::build(buf, max_level);
    // Element index of the first key with path ≥ `path` (aligned at
    // `level`), via the level-`level` jump table: a level-`level` prefix
    // can only change at a bucket start, so searching the table is
    // searching the array.
    let start_of = |path: u128, level: u8| -> usize {
        let offs = table.at(level);
        let k = offs.partition_point(|&i| buf[i].key.prefix::<D>(level).path() < path);
        offs.get(k).copied().unwrap_or(buf.len())
    };
    for (ci, &(path, level)) in leaves.iter().enumerate() {
        let span = 1u128 << ((MAX_DEPTH - level) as u32 * D as u32);
        let lo = start_of(path, level);
        let hi = if ci + 1 < leaves.len() {
            start_of(path + span, level)
        } else {
            buf.len()
        };
        counts[ci] = (hi - lo) as u64;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use optipart_mpisim::rng::SplitMix64;
    use optipart_octree::generate::Distribution;
    use optipart_octree::{sample_points, tree_from_points};
    use optipart_sfc::{Cell3, Curve, KeyedCell};

    fn shuffled_mesh(n: usize, seed: u64, curve: Curve) -> Vec<KeyedCell<3>> {
        let pts = sample_points::<3>(Distribution::Normal, n, seed);
        let tree = tree_from_points(&pts, 1, 12, curve);
        let mut cells: Vec<KeyedCell<3>> = tree.leaves().to_vec();
        SplitMix64::new(seed ^ 0xDEAD).shuffle(&mut cells);
        cells
    }

    #[test]
    fn treesort_matches_comparison_sort() {
        for curve in Curve::ALL {
            for seed in [1u64, 2, 3] {
                let mut a = shuffled_mesh(700, seed, curve);
                let mut expected = a.clone();
                expected.sort_unstable();
                treesort(&mut a);
                assert_eq!(a, expected, "{curve} seed {seed}");
            }
        }
    }

    #[test]
    fn treesort_is_bit_identical_to_reference() {
        for curve in Curve::ALL {
            for seed in [1u64, 7, 42] {
                // Above PAR_CUTOFF so the parallel fan-out actually runs.
                let base = shuffled_mesh(4000, seed, curve);
                let mut expected = base.clone();
                treesort_levels_reference(&mut expected, 0, MAX_DEPTH);
                for threads in [1usize, 2, 4] {
                    let mut a = base.clone();
                    treesort_threaded(&mut a, threads);
                    assert_eq!(a, expected, "{curve} seed {seed} threads {threads}");
                }
                let mut a = base.clone();
                let mut scratch = Vec::new();
                treesort_with_scratch(&mut a, &mut scratch);
                assert_eq!(a, expected, "{curve} seed {seed} with_scratch");
            }
        }
    }

    #[test]
    fn partial_levels_match_reference() {
        // Sort each level-l1 prefix group with both implementations; the
        // windowed sorts must stay bit-identical too.
        for (l1, l2) in [(0u8, 2u8), (0, 5), (1, 3), (2, MAX_DEPTH)] {
            let mut a = shuffled_mesh(900, 17, Curve::Hilbert);
            treesort_levels(&mut a, 0, l1); // establish the l1-prefix grouping
            let mut expected = a.clone();
            let groups = level_groups(&a, l1);
            for w in &groups {
                treesort_levels_reference(&mut expected[w.clone()], l1, l2);
            }
            for w in &groups {
                treesort_levels(&mut a[w.clone()], l1, l2);
            }
            assert_eq!(a, expected, "levels [{l1}, {l2})");
        }
    }

    fn level_groups<const D: usize>(a: &[KeyedCell<D>], l1: u8) -> Vec<std::ops::Range<usize>> {
        let offs = bucket_offsets_at_level(a, l1);
        (0..offs.len())
            .map(|i| offs[i]..offs.get(i + 1).copied().unwrap_or(a.len()))
            .collect()
    }

    #[test]
    fn scratch_reuse_is_allocation_free_shape() {
        // Behavioural proxy for allocation-freedom (the counting allocator
        // lives in the bench binary): the scratch vec keeps its capacity
        // and the sort result is unchanged across reuses.
        let mut scratch = Vec::new();
        for seed in [3u64, 4, 5] {
            let mut a = shuffled_mesh(1200, seed, Curve::Morton);
            let mut expected = a.clone();
            expected.sort_unstable();
            treesort_with_scratch(&mut a, &mut scratch);
            assert_eq!(a, expected, "seed {seed}");
        }
        assert!(scratch.capacity() >= 1);
    }

    #[test]
    fn treesort_handles_mixed_levels_with_ancestors() {
        // Non-linear input containing ancestors and descendants together.
        let parent = Cell3::new([1 << 29, 0, 0], 3);
        let mut cells = vec![parent];
        for c in parent.children() {
            cells.push(c);
            for g in c.children() {
                cells.push(g);
            }
        }
        for curve in Curve::ALL {
            let mut keyed = KeyedCell::key_all(&cells, curve);
            let mut expected = keyed.clone();
            expected.sort_unstable();
            treesort(&mut keyed);
            assert_eq!(keyed, expected, "{curve}");
            // Ancestor-first: parent precedes every child.
            let pi = keyed.iter().position(|kc| kc.cell == parent).unwrap();
            assert_eq!(pi, 0);
        }
    }

    #[test]
    fn treesort_small_and_empty_inputs() {
        let mut empty: Vec<KeyedCell<3>> = vec![];
        treesort(&mut empty);
        let mut one = KeyedCell::key_all(&[Cell3::root()], Curve::Morton);
        treesort(&mut one);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn partial_levels_only_group_prefixes() {
        // Sorting only levels [0, 2) groups elements by their level-2
        // ancestor without ordering inside groups.
        let mut a = shuffled_mesh(500, 9, Curve::Hilbert);
        treesort_levels(&mut a, 0, 2);
        let prefixes: Vec<u128> = a.iter().map(|kc| kc.key.prefix::<3>(2).path()).collect();
        // Prefixes must be non-decreasing (grouped in curve order).
        assert!(prefixes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn bucket_offsets_partition_the_array() {
        let mut a = shuffled_mesh(600, 4, Curve::Hilbert);
        treesort(&mut a);
        for level in [1u8, 2, 3] {
            let offs = bucket_offsets_at_level(&a, level);
            assert_eq!(offs[0], 0);
            assert!(offs.windows(2).all(|w| w[0] < w[1]));
            assert!(offs.len() <= 1 << (3 * level as usize));
            // Buckets get smaller (more numerous) with level — the λ vs s
            // trade of Fig. 2.
            if level > 1 {
                let prev = bucket_offsets_at_level(&a, level - 1);
                assert!(offs.len() >= prev.len());
            }
        }
    }

    #[test]
    fn level_offsets_table_matches_per_level_scans() {
        for (n, seed, curve) in [(600, 4, Curve::Hilbert), (900, 11, Curve::Morton)] {
            let mut a = shuffled_mesh(n, seed, curve);
            treesort(&mut a);
            let table = LevelOffsets::build(&a, 8);
            assert_eq!(table.max_level(), 8);
            for level in 0..=8u8 {
                assert_eq!(
                    table.at(level),
                    bucket_offsets_at_level(&a, level).as_slice(),
                    "level {level} seed {seed}"
                );
            }
        }
        // Mixed-level input with parked ancestors.
        let parent = Cell3::new([1 << 29, 0, 0], 3);
        let mut cells = vec![parent];
        for c in parent.children() {
            cells.push(c);
            for g in c.children() {
                cells.push(g);
            }
        }
        let mut keyed = KeyedCell::key_all(&cells, Curve::Hilbert);
        treesort(&mut keyed);
        let table = LevelOffsets::build(&keyed, 6);
        for level in 0..=6u8 {
            assert_eq!(
                table.at(level),
                bucket_offsets_at_level(&keyed, level).as_slice(),
                "ancestors level {level}"
            );
        }
        let empty: Vec<KeyedCell<3>> = vec![];
        assert!(LevelOffsets::build(&empty, 3).at(2).is_empty());
    }

    #[test]
    fn treesort_is_idempotent() {
        let mut a = shuffled_mesh(300, 5, Curve::Morton);
        treesort(&mut a);
        let once = a.clone();
        treesort(&mut a);
        assert_eq!(a, once);
    }
}
