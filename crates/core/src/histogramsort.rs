//! Histogram-sort partitioning — the comparison-based splitter-refinement
//! baseline (Solomonik & Kale 2010, the paper's reference \[33\]).
//!
//! Where TreeSort's splitter search buckets by key *digits* (no
//! comparisons, one subtree level per round), histogram sort bisects the
//! key space: each round probes one candidate key per unresolved splitter,
//! counts elements below each probe with local binary searches plus one
//! vector all-reduce, and narrows the bracket. Like TreeSort it admits a
//! load tolerance; unlike TreeSort its probes are arbitrary keys, so the
//! induced partitions cut *through* subtrees instead of aligning with them
//! — which is exactly why the paper's flexible TreeSort yields
//! lower-surface partitions at equal tolerance.

use crate::partition::{
    exchange_and_sort, PartitionOptions, PartitionOutcome, PartitionReport, PHASE_LOCAL_SORT,
    PHASE_SPLITTER,
};
use optipart_mpisim::{DistVec, Engine};
use optipart_sfc::{KeyedCell, SfcKey};

/// One splitter's bisection bracket.
#[derive(Clone, Copy, Debug)]
struct Bracket {
    /// Target global rank `r·N/p`.
    target: u64,
    /// Lower probe path (global rank `lo_rank` ≤ target).
    lo_path: u128,
    lo_rank: u64,
    /// Upper probe path (global rank `hi_rank` ≥ target).
    hi_path: u128,
    hi_rank: u64,
    /// Resolved splitter, once within tolerance.
    done: Option<SfcKey>,
}

/// Partitions by histogram sort over SFC keys with the given load
/// tolerance (`opts.tolerance`, same semantics as TreeSort's).
pub fn histogramsort_partition<const D: usize>(
    engine: &mut Engine,
    mut dist: DistVec<KeyedCell<D>>,
    opts: PartitionOptions,
) -> PartitionOutcome<D> {
    let p = engine.p();
    let elem_bytes = std::mem::size_of::<KeyedCell<D>>() as f64;

    // Local sort so rank counting is a binary search.
    engine.phase(PHASE_LOCAL_SORT, |e| {
        e.compute(&mut dist, |_r, buf| {
            buf.sort_unstable();
            buf.len() as f64 * elem_bytes * (buf.len().max(2) as f64).log2()
        });
    });

    let local_n: Vec<u64> = dist.counts().iter().map(|&c| c as u64).collect();
    let n = engine.allreduce_sum_u64(&local_n);
    let tol_units = (opts.tolerance * (n as f64 / p as f64)).max(0.0);

    let (splitters, rounds, achieved) = engine.phase(PHASE_SPLITTER, |engine| {
        let max_path: u128 = if (D as u32 * optipart_sfc::MAX_DEPTH as u32) >= 128 {
            u128::MAX
        } else {
            (1u128 << (D as u32 * optipart_sfc::MAX_DEPTH as u32)) - 1
        };
        let mut brackets: Vec<Bracket> = (1..p)
            .map(|r| Bracket {
                target: (r as u64 * n) / p as u64,
                lo_path: 0,
                lo_rank: 0,
                hi_path: max_path,
                hi_rank: n,
                done: None,
            })
            .collect();
        let mut rounds = 0usize;

        loop {
            // Probes: midpoints of every unresolved bracket.
            let probes: Vec<(usize, SfcKey)> = brackets
                .iter()
                .enumerate()
                .filter(|(_, b)| b.done.is_none())
                .map(|(i, b)| {
                    (
                        i,
                        SfcKey::from_parts(b.lo_path + (b.hi_path - b.lo_path) / 2, 0),
                    )
                })
                .collect();
            if probes.is_empty() {
                break;
            }
            // Local histogram: elements strictly below each probe.
            let probe_keys: Vec<SfcKey> = probes.iter().map(|(_, k)| *k).collect();
            let local_hist: Vec<Vec<u64>> = engine.compute_map(&mut dist, |_r, buf| {
                let counts: Vec<u64> = probe_keys
                    .iter()
                    .map(|k| buf.partition_point(|kc| kc.key < *k) as u64)
                    .collect();
                (probe_keys.len() as f64 * 64.0, counts)
            });
            let global_hist = engine.allreduce_sum_vec_u64(&local_hist);
            rounds += 1;

            for ((bi, key), &rank) in probes.iter().zip(&global_hist) {
                let b = &mut brackets[*bi];
                let err = rank.abs_diff(b.target) as f64;
                if err <= tol_units || b.hi_path - b.lo_path <= 1 {
                    // Accept the bracket edge nearest the target when the
                    // probe itself is not closest.
                    let lo_err = b.target.abs_diff(b.lo_rank) as f64;
                    let hi_err = b.target.abs_diff(b.hi_rank) as f64;
                    b.done = Some(if err <= lo_err && err <= hi_err {
                        *key
                    } else if lo_err <= hi_err {
                        SfcKey::from_parts(b.lo_path, 0)
                    } else {
                        SfcKey::from_parts(b.hi_path, 0)
                    });
                } else if rank < b.target {
                    b.lo_path = key.path();
                    b.lo_rank = rank;
                } else {
                    b.hi_path = key.path();
                    b.hi_rank = rank;
                }
            }
        }

        let mut splitters: Vec<SfcKey> = brackets
            .iter()
            .map(|b| b.done.expect("all resolved"))
            .collect();
        // Enforce monotonicity (independent bisections can cross on heavily
        // duplicated prefixes).
        for i in 1..splitters.len() {
            if splitters[i] < splitters[i - 1] {
                splitters[i] = splitters[i - 1];
            }
        }
        let grain = (n as f64 / p as f64).max(1.0);
        let achieved = brackets
            .iter()
            .map(|b| {
                b.target
                    .abs_diff(b.lo_rank)
                    .min(b.target.abs_diff(b.hi_rank)) as f64
                    / grain
            })
            .fold(0.0f64, f64::max);
        (splitters, rounds, achieved)
    });

    let out = exchange_and_sort(engine, dist, &splitters, opts.alltoall);
    let counts: Vec<u64> = out.counts().iter().map(|&c| c as u64).collect();
    let lambda = out.load_imbalance();
    let wmax = out.wmax() as u64;
    PartitionOutcome {
        dist: out,
        splitters,
        report: PartitionReport {
            rounds,
            splitter_level: 0,
            achieved_tolerance: achieved,
            counts,
            lambda,
            wmax,
            cmax: 0,
            predicted_tp: 0.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{distribute_shuffled, owner_of, treesort_partition};
    use optipart_machine::{AppModel, MachineModel, PerfModel};
    use optipart_octree::MeshParams;
    use optipart_sfc::Curve;

    fn engine(p: usize) -> Engine {
        Engine::new(
            p,
            PerfModel::new(MachineModel::stampede(), AppModel::laplacian_matvec()),
        )
    }

    #[test]
    fn histogramsort_produces_global_order() {
        for curve in Curve::ALL {
            let tree = MeshParams::normal(2000, 131).build::<3>(curve);
            let p = 8;
            let mut e = engine(p);
            let out = histogramsort_partition(
                &mut e,
                distribute_shuffled(&tree, p, 9),
                PartitionOptions::exact(),
            );
            let mut expected: Vec<KeyedCell<3>> = tree.leaves().to_vec();
            expected.sort_unstable();
            assert_eq!(out.dist.concat(), expected, "{curve}");
            for (r, buf) in out.dist.parts().iter().enumerate() {
                for kc in buf {
                    assert_eq!(owner_of(&out.splitters, &kc.key), r);
                }
            }
        }
    }

    #[test]
    fn exact_histogramsort_is_balanced() {
        let tree = MeshParams::normal(4000, 137).build::<3>(Curve::Hilbert);
        let p = 16;
        let mut e = engine(p);
        let out = histogramsort_partition(
            &mut e,
            distribute_shuffled(&tree, p, 3),
            PartitionOptions::exact(),
        );
        assert!(out.report.lambda < 1.05, "λ = {}", out.report.lambda);
    }

    #[test]
    fn tolerance_reduces_rounds() {
        let tree = MeshParams::normal(4000, 139).build::<3>(Curve::Hilbert);
        let p = 16;
        let rounds_at = |tol: f64| {
            let mut e = engine(p);
            histogramsort_partition(
                &mut e,
                distribute_shuffled(&tree, p, 3),
                PartitionOptions::with_tolerance(tol),
            )
            .report
            .rounds
        };
        assert!(rounds_at(0.3) <= rounds_at(0.0));
    }

    #[test]
    fn agrees_with_treesort_partitioning() {
        let tree = MeshParams::normal(2500, 149).build::<3>(Curve::Morton);
        let p = 8;
        let mut e1 = engine(p);
        let a = histogramsort_partition(
            &mut e1,
            distribute_shuffled(&tree, p, 5),
            PartitionOptions::exact(),
        );
        let mut e2 = engine(p);
        let b = treesort_partition(
            &mut e2,
            distribute_shuffled(&tree, p, 5),
            PartitionOptions::exact(),
        );
        assert_eq!(a.dist.concat(), b.dist.concat());
    }

    #[test]
    fn single_rank_noop() {
        let tree = MeshParams::normal(500, 151).build::<3>(Curve::Hilbert);
        let mut e = engine(1);
        let out = histogramsort_partition(
            &mut e,
            distribute_shuffled(&tree, 1, 5),
            PartitionOptions::exact(),
        );
        assert!(out.splitters.is_empty());
        assert_eq!(out.dist.total_len(), tree.len());
    }
}
