//! SampleSort-based SFC partitioning — the Dendro baseline of §5.2.
//!
//! "Most existing SFC-based partitioning algorithms rely on parallel sorting
//! algorithms such as SampleSort along with an ordering defined based on the
//! SFC. … We compare against the SFC-based partitioning implemented in
//! Dendro. This implementation uses the Morton ordering along with
//! SampleSort to partition data."
//!
//! The classic regular-sampling structure: sort locally (comparisons), pick
//! `p − 1` regular samples per rank, allgather and sort the `p(p−1)` samples,
//! select every `(p−1)`-th as a splitter, exchange, merge. The
//! `O(p²)`-sample splitter phase is precisely what limits its scalability
//! against TreeSort's count-based selection (Fig. 6).

use crate::partition::{
    owner_of, PartitionOutcome, PartitionReport, PHASE_ALL2ALL, PHASE_LOCAL_SORT, PHASE_SPLITTER,
};
use optipart_mpisim::{AllToAllAlgo, DistVec, Engine};
use optipart_sfc::{KeyedCell, SfcKey};

/// Options for the SampleSort baseline.
#[derive(Clone, Copy, Debug)]
pub struct SampleSortOptions {
    /// Samples contributed per rank. `None` = the classic `p − 1` (regular
    /// sampling with exact balance guarantees, quadratic total samples).
    pub samples_per_rank: Option<usize>,
    /// All-to-all schedule for the data exchange.
    pub alltoall: AllToAllAlgo,
}

impl Default for SampleSortOptions {
    fn default() -> Self {
        SampleSortOptions {
            samples_per_rank: None,
            alltoall: AllToAllAlgo::Hypercube,
        }
    }
}

/// Partitions by parallel SampleSort on the SFC keys.
pub fn samplesort_partition<const D: usize>(
    engine: &mut Engine,
    mut dist: DistVec<KeyedCell<D>>,
    opts: SampleSortOptions,
) -> PartitionOutcome<D> {
    let p = engine.p();
    let elem_bytes = std::mem::size_of::<KeyedCell<D>>() as f64;
    let s = opts.samples_per_rank.unwrap_or((p - 1).max(1)).max(1);

    // Local comparison sort (n log n memory traffic).
    engine.phase(PHASE_LOCAL_SORT, |e| {
        e.compute(&mut dist, |_r, buf| {
            buf.sort_unstable();
            buf.len() as f64 * elem_bytes * (buf.len().max(2) as f64).log2()
        });
    });

    // Splitter selection by regular sampling.
    let splitters: Vec<SfcKey> = engine.phase(PHASE_SPLITTER, |e| {
        if p == 1 {
            return Vec::new();
        }
        let local_samples: Vec<Vec<SfcKey>> = e.compute_map(&mut dist, |_r, buf| {
            let mut samples = Vec::with_capacity(s);
            if !buf.is_empty() {
                for i in 1..=s {
                    let idx = (i * buf.len() / (s + 1)).min(buf.len() - 1);
                    samples.push(buf[idx].key);
                }
            }
            (s as f64 * 24.0, samples)
        });
        // The O(p·s) gather that hurts at scale.
        let mut all = e.allgather(&local_samples);
        all.sort_unstable();
        if all.is_empty() {
            return vec![SfcKey::MAX; p - 1];
        }
        (1..p)
            .map(|r| all[(r * all.len() / p).min(all.len() - 1)])
            .collect()
    });

    // Exchange and final local merge (modelled as a comparison sort of the
    // received runs).
    let recv = engine.phase(PHASE_ALL2ALL, |e| {
        e.alltoallv_by(
            dist.into_parts(),
            |_src, kc: &KeyedCell<D>| owner_of(&splitters, &kc.key),
            opts.alltoall,
        )
    });
    let mut out = DistVec::from_parts(recv);
    engine.phase(PHASE_LOCAL_SORT, |e| {
        e.compute(&mut out, |_r, buf| {
            buf.sort_unstable();
            // p-way merge traffic: n log p.
            buf.len() as f64 * elem_bytes * (p.max(2) as f64).log2()
        });
    });

    let counts: Vec<u64> = out.counts().iter().map(|&c| c as u64).collect();
    let lambda = out.load_imbalance();
    let wmax = out.wmax() as u64;
    PartitionOutcome {
        dist: out,
        splitters,
        report: PartitionReport {
            rounds: 1,
            splitter_level: 0,
            achieved_tolerance: 0.0,
            counts,
            lambda,
            wmax,
            cmax: 0,
            predicted_tp: 0.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::distribute_tree;
    use optipart_machine::{AppModel, MachineModel, PerfModel};
    use optipart_octree::MeshParams;
    use optipart_sfc::Curve;

    fn engine(p: usize) -> Engine {
        Engine::new(
            p,
            PerfModel::new(MachineModel::stampede(), AppModel::laplacian_matvec()),
        )
    }

    #[test]
    fn samplesort_produces_global_order() {
        for curve in Curve::ALL {
            let tree = MeshParams::normal(2000, 61).build::<3>(curve);
            let mut e = engine(8);
            let out = samplesort_partition(
                &mut e,
                distribute_tree(&tree, 8),
                SampleSortOptions::default(),
            );
            let mut expected: Vec<KeyedCell<3>> = tree.leaves().to_vec();
            expected.sort_unstable();
            assert_eq!(out.dist.concat(), expected, "{curve}");
        }
    }

    #[test]
    fn samplesort_is_roughly_balanced() {
        let tree = MeshParams::normal(8000, 67).build::<3>(Curve::Morton);
        let mut e = engine(16);
        let out = samplesort_partition(
            &mut e,
            distribute_tree(&tree, 16),
            SampleSortOptions::default(),
        );
        // Regular sampling bounds the partition size by ~2 N/p.
        assert!(out.report.lambda < 3.0, "λ = {}", out.report.lambda);
        assert_eq!(out.dist.total_len(), tree.len());
    }

    #[test]
    fn splitter_phase_costs_grow_with_p() {
        // The quadratic sample volume must show up in the splitter phase.
        let tree = MeshParams::normal(4000, 71).build::<3>(Curve::Morton);
        let t_small = {
            let mut e = engine(4);
            let _ = samplesort_partition(
                &mut e,
                distribute_tree(&tree, 4),
                SampleSortOptions::default(),
            );
            e.phase_time(PHASE_SPLITTER)
        };
        let t_large = {
            let mut e = engine(64);
            let _ = samplesort_partition(
                &mut e,
                distribute_tree(&tree, 64),
                SampleSortOptions::default(),
            );
            e.phase_time(PHASE_SPLITTER)
        };
        assert!(
            t_large > t_small * 4.0,
            "small {t_small:e} vs large {t_large:e}"
        );
    }

    #[test]
    fn reduced_oversampling_still_partitions() {
        let tree = MeshParams::normal(3000, 73).build::<3>(Curve::Hilbert);
        let mut e = engine(8);
        let out = samplesort_partition(
            &mut e,
            distribute_tree(&tree, 8),
            SampleSortOptions {
                samples_per_rank: Some(4),
                ..Default::default()
            },
        );
        assert_eq!(out.dist.total_len(), tree.len());
        let mut expected: Vec<KeyedCell<3>> = tree.leaves().to_vec();
        expected.sort_unstable();
        assert_eq!(out.dist.concat(), expected);
    }

    #[test]
    fn single_rank_samplesort() {
        let tree = MeshParams::normal(400, 79).build::<3>(Curve::Hilbert);
        let mut e = engine(1);
        let out = samplesort_partition(
            &mut e,
            distribute_tree(&tree, 1),
            SampleSortOptions::default(),
        );
        assert_eq!(out.dist.total_len(), tree.len());
    }
}
