//! Rank-view distributed TreeSort on the real threaded runtime.
//!
//! The same algorithm as [`crate::partition::treesort_partition`], written
//! the way an MPI code would write it: each rank owns only its local slice,
//! exchanges bucket counts with true `Allreduce`s, and replays the
//! deterministic splitter-search state machine locally. Since every rank
//! reduces identical global counts, all ranks hold identical bucket state —
//! the SPMD pattern the paper's C++/MPI implementation uses.
//!
//! Purpose: **ground truth** for the virtual-process engine. The
//! cross-validation tests assert that this real-threads execution produces
//! bit-identical partitions to the global-view simulation.

use crate::partition::{count_children, owner_of, PartitionOptions, SplitterSearch};
use crate::treesort::treesort;
use optipart_mpisim::threaded::ThreadComm;
use optipart_sfc::{KeyedCell, SfcKey};

/// Flexible-tolerance distributed TreeSort, rank view.
///
/// Returns this rank's partition slice (SFC-sorted) and the splitters
/// (identical on every rank).
pub fn threaded_treesort_partition<const D: usize>(
    comm: &mut ThreadComm,
    mut local: Vec<KeyedCell<D>>,
    opts: PartitionOptions,
) -> (Vec<KeyedCell<D>>, Vec<SfcKey>) {
    let p = comm.p();
    let n = comm.allreduce_sum_u64(local.len() as u64);
    let mut search = SplitterSearch::replicated(n);
    let tol_units = opts.tolerance * (n as f64 / p as f64);

    loop {
        let mut violating = search.pending_splits(p, tol_units, opts.max_level);
        if violating.is_empty() {
            break;
        }
        if let Some(k) = opts.max_split_per_round {
            violating.truncate((k / (1 << D)).max(1));
        }
        let bounds = search.split_bounds::<D>(&violating);
        let local_counts = count_children::<D, _>(&local, &bounds, &|_| 1u64);
        let global = comm.allreduce_sum_vec_u64(local_counts);
        search.apply_split::<D>(&violating, &global);
    }
    let (splitters, _) = search.choose_splitters(p);

    // Personalised exchange by ownership, then the local TreeSort.
    let mut bufs: Vec<Vec<KeyedCell<D>>> = (0..p).map(|_| Vec::new()).collect();
    for kc in local.drain(..) {
        bufs[owner_of(&splitters, &kc.key)].push(kc);
    }
    let recv = comm.alltoallv(bufs);
    let mut mine: Vec<KeyedCell<D>> = recv.into_iter().flatten().collect();
    treesort(&mut mine);
    (mine, splitters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{distribute_shuffled, treesort_partition};
    use optipart_machine::{AppModel, MachineModel, PerfModel};
    use optipart_mpisim::{threaded, Engine};
    use optipart_octree::MeshParams;
    use optipart_sfc::Curve;

    /// The headline validation: real threads and the virtual engine produce
    /// bit-identical partitions (same splitters, same per-rank slices).
    #[test]
    fn threads_match_virtual_engine() {
        for curve in Curve::ALL {
            for tol in [0.0, 0.3] {
                let tree = MeshParams::normal(3_000, 163).build::<3>(curve);
                let p = 6;

                // Virtual engine run.
                let mut e = Engine::new(
                    p,
                    PerfModel::new(MachineModel::titan(), AppModel::laplacian_matvec()),
                );
                let input = distribute_shuffled(&tree, p, 17);
                let virt = treesort_partition(
                    &mut e,
                    input.clone(),
                    PartitionOptions::with_tolerance(tol),
                );

                // Real threads run on the identical input.
                let parts = input.into_parts();
                let results = threaded::run(p, |comm| {
                    let local = parts[comm.rank()].clone();
                    threaded_treesort_partition(comm, local, PartitionOptions::with_tolerance(tol))
                });

                for (r, (mine, splitters)) in results.into_iter().enumerate() {
                    assert_eq!(
                        &splitters, &virt.splitters,
                        "{curve} tol {tol}: splitters diverge on rank {r}"
                    );
                    assert_eq!(
                        mine,
                        *virt.dist.rank(r),
                        "{curve} tol {tol}: rank {r} slice diverges"
                    );
                }
            }
        }
    }

    /// Staged selection (Eq. 2): with a tight `max_split_per_round` both
    /// paths must truncate the *same* pending-split list each round —
    /// including the forced refinement rounds past the tolerance test
    /// (shared-edge contention at tolerance ≥ 0.5, chooser feasibility) —
    /// or their splitter state machines silently diverge.
    #[test]
    fn threads_match_virtual_engine_under_split_budget() {
        let tree = MeshParams::normal(2_000, 211).build::<3>(Curve::Morton);
        for p in [5, 11] {
            for budget in [8, 16] {
                for tol in [0.0, 0.25, 0.6] {
                    let opts = PartitionOptions {
                        tolerance: tol,
                        max_split_per_round: Some(budget),
                        ..Default::default()
                    };
                    let mut e = Engine::new(
                        p,
                        PerfModel::new(MachineModel::titan(), AppModel::laplacian_matvec()),
                    );
                    let input = distribute_shuffled(&tree, p, 29);
                    let virt = treesort_partition(&mut e, input.clone(), opts);

                    let parts = input.into_parts();
                    let results = threaded::run(p, |comm| {
                        let local = parts[comm.rank()].clone();
                        threaded_treesort_partition(comm, local, opts)
                    });
                    for (r, (mine, splitters)) in results.into_iter().enumerate() {
                        assert_eq!(
                            &splitters, &virt.splitters,
                            "p {p} budget {budget} tol {tol}: splitters diverge on rank {r}"
                        );
                        assert_eq!(
                            mine,
                            *virt.dist.rank(r),
                            "p {p} budget {budget} tol {tol}: rank {r} slice diverges"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn threaded_partition_is_globally_sorted() {
        let tree = MeshParams::normal(1_500, 167).build::<3>(Curve::Hilbert);
        let p = 4;
        let parts = distribute_shuffled(&tree, p, 3).into_parts();
        let results = threaded::run(p, |comm| {
            threaded_treesort_partition(comm, parts[comm.rank()].clone(), PartitionOptions::exact())
                .0
        });
        let flat: Vec<_> = results.into_iter().flatten().collect();
        let mut expected: Vec<_> = tree.leaves().to_vec();
        expected.sort_unstable();
        assert_eq!(flat, expected);
    }
}
