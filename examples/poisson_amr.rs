//! End-to-end AMR application: solve a Poisson problem on a Gaussian-ball
//! adaptive mesh with CG, comparing equal-work vs OptiPart partitions.
//!
//! This is the paper's §5.3 test application driven to an actual solve:
//! −Δu = 1 on the unit cube, zero Dirichlet boundary, adaptively refined
//! around a spherical shell, 2:1-balanced.
//!
//! ```text
//! cargo run --release --example poisson_amr
//! ```

use optipart::core::optipart::{optipart, OptiPartOptions};
use optipart::core::partition::{distribute_tree, treesort_partition, PartitionOptions};
use optipart::fem::{cg_solve, DistMesh};
use optipart::machine::{AppModel, MachineModel, PerfModel};
use optipart::mpisim::{DistVec, Engine};
use optipart::octree::balance::balance21;
use optipart::octree::gaussian_ball;
use optipart::sfc::Curve;

fn main() {
    let p = 24;
    let tree = balance21(&gaussian_ball::<3>(6, Curve::Hilbert));
    println!(
        "gaussian-ball mesh: {} leaves, levels {}..{}, 2:1 balanced",
        tree.len(),
        tree.leaves()
            .iter()
            .map(|kc| kc.cell.level())
            .min()
            .unwrap(),
        tree.leaves()
            .iter()
            .map(|kc| kc.cell.level())
            .max()
            .unwrap()
    );

    let machine = MachineModel::cloudlab_clemson();
    let app = AppModel::laplacian_matvec();

    for flexible in [false, true] {
        let mut e = Engine::new(p, PerfModel::new(machine.clone(), app));
        let parted = if flexible {
            optipart(
                &mut e,
                distribute_tree(&tree, p),
                OptiPartOptions::default(),
            )
        } else {
            treesort_partition(&mut e, distribute_tree(&tree, p), PartitionOptions::exact())
        };
        let lambda = parted.report.lambda;
        let mesh = DistMesh::build(&mut e, parted.dist, Curve::Hilbert);
        e.reset(); // measure the solve alone

        let b = DistVec::from_parts(mesh.cells.counts().iter().map(|&c| vec![1.0; c]).collect());
        let (u, rep) = cg_solve(&mut e, &mesh, &b, 1e-8, 2000);
        let umax = u.parts().iter().flatten().fold(0.0f64, |m, &v| m.max(v));
        let energy = e.energy_report();
        println!(
            "{:>11}: λ = {lambda:.3}, CG {} iters (residual {:.2e}), max(u) = {umax:.4}, \
             simulated {:.2} s, {:.0} J ({:.0} J comm)",
            if flexible { "optipart" } else { "equal-work" },
            rep.iterations,
            rep.rel_residual,
            rep.seconds,
            energy.total_j,
            energy.comm_j,
        );
    }
}
