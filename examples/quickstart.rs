//! Quickstart: partition an adaptive octree with equal-work SFC
//! partitioning vs OptiPart and compare the partition quality.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use optipart::core::metrics::{assignment, communication_matrix, load_imbalance, partition_counts};
use optipart::core::optipart::{optipart, OptiPartOptions};
use optipart::core::partition::{distribute_tree, treesort_partition, PartitionOptions};
use optipart::machine::{AppModel, MachineModel, PerfModel};
use optipart::mpisim::Engine;
use optipart::octree::MeshParams;
use optipart::sfc::Curve;

fn main() {
    // An adaptively refined octree from the paper's default workload:
    // normally distributed points, depth-30 domain.
    let p = 32;
    let tree = MeshParams::normal(20_000, 42).build::<3>(Curve::Hilbert);
    println!(
        "mesh: {} leaves (adaptive, normal distribution), {p} ranks",
        tree.len()
    );

    // The machine and application the partition should be optimal for:
    // a 10 GbE CloudLab cluster running a Laplacian matvec.
    let machine = MachineModel::cloudlab_wisconsin();
    let app = AppModel::laplacian_matvec();
    println!(
        "machine: {} (tw/tc = {:.0}x), app: α = {}",
        machine.name,
        machine.comm_compute_ratio(),
        app.alpha
    );

    // Conventional equal-work SFC partitioning (what Dendro/p4est do).
    let mut e1 = Engine::new(p, PerfModel::new(machine.clone(), app));
    let exact = treesort_partition(
        &mut e1,
        distribute_tree(&tree, p),
        PartitionOptions::exact(),
    );

    // OptiPart: trades a little imbalance for less communication, using the
    // machine model to decide how much.
    let mut e2 = Engine::new(p, PerfModel::new(machine, app));
    let opti = optipart(
        &mut e2,
        distribute_tree(&tree, p),
        OptiPartOptions::default(),
    );

    for (name, splitters) in [
        ("equal-work", &exact.splitters),
        ("optipart", &opti.splitters),
    ] {
        let assign = assignment(&tree, splitters);
        let counts = partition_counts(&assign, p);
        let m = communication_matrix(&tree, &assign, p);
        println!(
            "{name:>10}: λ = {:.3}, comm NNZ = {}, ghost elements = {}, Cmax = {}",
            load_imbalance(&counts),
            m.nnz(),
            m.total_bytes(),
            m.cmax(),
        );
    }
    println!(
        "optipart chose tolerance {:.3} after {} refinement rounds (predicted Tp {:.3e} s/matvec)",
        opti.report.achieved_tolerance, opti.report.rounds, opti.report.predicted_tp
    );
}
