//! 2D reproduction of the paper's Figs. 2 and 3: deeper TreeSort levels
//! improve the load balance λ but monotonically grow the partition
//! boundary `s`.
//!
//! Fig. 2 draws a 3-way partition of a uniform quadtree at levels 1–4 with
//! `(l, λ, s)` annotated; Fig. 3 analyses how refining a quadrant changes
//! the shared surface. Here we compute both exactly using the quadtree
//! machinery.
//!
//! ```text
//! cargo run --release --example boundary_growth
//! ```

use optipart::octree::neighbors::segment_surface;
use optipart::octree::LinearTree;
use optipart::sfc::{Cell, Curve, MAX_DEPTH};

fn main() {
    println!("-- Fig. 2: uniform 2D grid split among p = 3 ranks --");
    println!(
        "{:>5} {:>7} {:>9} {:>12}",
        "level", "cells", "lambda", "boundary"
    );
    let p = 3;
    for level in 1u8..=6 {
        let tree: LinearTree<2> =
            LinearTree::root(Curve::Hilbert).refine_where(|c| c.level() < level, level);
        let n = tree.len();
        // Contiguous curve split into p parts, N/p with remainder up front —
        // the "orange partition gets the extra load" of Fig. 2.
        let mut bounds = vec![0usize];
        for r in 1..=p {
            bounds.push(r * n / p + usize::from(!(r * n).is_multiple_of(p)));
        }
        bounds[p] = n;
        let sizes: Vec<usize> = bounds.windows(2).map(|w| w[1] - w[0]).collect();
        let lambda = *sizes.iter().max().unwrap() as f64 / *sizes.iter().min().unwrap() as f64;
        // Boundary in units of the current level's edge length.
        let edge = (1u64 << (MAX_DEPTH - level)) as f64;
        let s: f64 = bounds
            .windows(2)
            .map(|w| segment_surface(tree.leaves(), w[0], w[1], Curve::Hilbert) as f64 / edge)
            .sum::<f64>()
            / 2.0; // each internal face counted from both sides
        println!("{level:>5} {n:>7} {lambda:>9.3} {s:>12.1}");
    }

    println!("\n-- Fig. 3: refining a quadrant against a fixed partition --");
    // A 4x4 grid; Q is an interior quadrant and the blue partition owns 1-3
    // of Q's face neighbours. Q is refined into 4 children, and 0-3 of the
    // children joining the blue partition. We report the blue partition's
    // total boundary (against all non-blue cells) in child-edge units: the
    // paper's point is that it is non-decreasing under refinement except in
    // pathological corner cases.
    let tree: LinearTree<2> = LinearTree::root(Curve::Morton).refine_where(|c| c.level() < 2, 2);
    let q = Cell::<2>::new([1 << (MAX_DEPTH - 2), 1 << (MAX_DEPTH - 2)], 2);
    let child_edge = (q.side() / 2) as u64;
    let grid: Vec<Cell<2>> = tree
        .leaves()
        .iter()
        .map(|kc| kc.cell)
        .filter(|c| *c != q)
        .collect();
    let kids = {
        let mut k = q.children();
        // Order children nearest the blue (west) side first.
        k.sort_by_key(|c| (c.anchor()[0], c.anchor()[1]));
        k
    };
    for shared_faces in 1..=3usize {
        let mut blue_base: Vec<Cell<2>> = vec![q.face_neighbor(0, -1).unwrap()];
        if shared_faces >= 2 {
            blue_base.push(q.face_neighbor(1, -1).unwrap());
        }
        if shared_faces >= 3 {
            blue_base.push(q.face_neighbor(1, 1).unwrap());
        }
        print!("blue shares {shared_faces} face(s):");
        for take in 0..=3usize {
            let blue: Vec<Cell<2>> = blue_base
                .iter()
                .copied()
                .chain(kids.iter().take(take).copied())
                .collect();
            let others: Vec<Cell<2>> = grid
                .iter()
                .copied()
                .filter(|c| !blue.contains(c))
                .chain(kids.iter().skip(take).copied())
                .collect();
            let perimeter: u64 = blue
                .iter()
                .map(|b| others.iter().map(|o| b.shared_face_area(o)).sum::<u64>())
                .sum::<u64>()
                / child_edge;
            if take == 0 {
                print!(" base {perimeter:>2}");
            } else {
                print!("  | +{take} children: {perimeter:>2}");
            }
        }
        println!();
    }
    println!("(blue-partition boundary in child-edge units; cf. Fig. 3 of the paper)");
}
