//! Architecture- and application-awareness demo: the *same mesh* partitions
//! differently on different machines and for different kernels.
//!
//! This is the paper's central point (§3.4 and footnote 1: "e.g. for the
//! Poisson equation vs the wave Equation on the same mesh"): OptiPart
//! consumes `tc`, `tw` and `α`, so Titan's fast Gemini network tolerates
//! little imbalance, while a 10 GbE CloudLab cluster trades much more
//! balance away to cut communication.
//!
//! ```text
//! cargo run --release --example machine_comparison
//! ```

use optipart::core::optipart::{optipart, OptiPartOptions};
use optipart::core::partition::distribute_tree;
use optipart::machine::{AppModel, MachineModel, PerfModel};
use optipart::mpisim::Engine;
use optipart::octree::MeshParams;
use optipart::sfc::Curve;

fn main() {
    let p = 32;
    let tree = MeshParams::normal(20_000, 7).build::<3>(Curve::Hilbert);
    println!("mesh: {} leaves, {p} ranks\n", tree.len());

    println!("-- machine-awareness (Laplacian matvec, α = 8) --");
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>10}",
        "machine", "tw/tc", "tolerance", "λ", "Cmax"
    );
    for machine in MachineModel::presets() {
        let ratio = machine.comm_compute_ratio();
        let mut e = Engine::new(
            p,
            PerfModel::new(machine.clone(), AppModel::laplacian_matvec()),
        );
        let out = optipart(
            &mut e,
            distribute_tree(&tree, p),
            OptiPartOptions::default(),
        );
        println!(
            "{:<14} {:>10.0} {:>10.3} {:>12.3} {:>10}",
            machine.name, ratio, out.report.achieved_tolerance, out.report.lambda, out.report.cmax
        );
    }

    println!("\n-- application-awareness (Wisconsin-8) --");
    println!(
        "{:<18} {:>6} {:>10} {:>12}",
        "kernel", "alpha", "tolerance", "λ"
    );
    for (name, app) in [
        ("poisson (matvec)", AppModel::laplacian_matvec()),
        ("wave (low-order)", AppModel::wave_matvec()),
    ] {
        let mut e = Engine::new(p, PerfModel::new(MachineModel::cloudlab_wisconsin(), app));
        let out = optipart(
            &mut e,
            distribute_tree(&tree, p),
            OptiPartOptions::default(),
        );
        println!(
            "{:<18} {:>6.1} {:>10.3} {:>12.3}",
            name, app.alpha, out.report.achieved_tolerance, out.report.lambda
        );
    }
}
