//! Renders a 2D adaptive quadtree partition as a PPM image: each partition
//! gets a colour, cell borders are drawn dark — a visual of the Fig. 2
//! story (Hilbert's compact blobs vs Morton's staircase fragments).
//!
//! ```text
//! cargo run --release --example visualize_partition
//! # writes partition_hilbert.ppm and partition_morton.ppm
//! ```

use optipart::core::metrics::assignment;
use optipart::core::partition::{distribute_tree, treesort_partition, PartitionOptions};
use optipart::machine::{AppModel, MachineModel, PerfModel};
use optipart::mpisim::Engine;
use optipart::octree::{sample_points, tree_from_points, Distribution};
use optipart::sfc::{Curve, MAX_DEPTH};
use std::io::Write;

const IMG: usize = 512;

fn main() {
    let p = 7;
    for curve in [Curve::Hilbert, Curve::Morton] {
        let pts = sample_points::<2>(Distribution::Normal, 4_000, 42);
        let tree = tree_from_points(&pts, 1, 9, curve);
        let mut e = Engine::new(
            p,
            PerfModel::new(
                MachineModel::cloudlab_wisconsin(),
                AppModel::laplacian_matvec(),
            ),
        );
        let out = treesort_partition(&mut e, distribute_tree(&tree, p), PartitionOptions::exact());
        let assign = assignment(&tree, &out.splitters);

        // Rasterise: per pixel, find the owning leaf.
        let mut img = vec![0u8; IMG * IMG * 3];
        let palette: [[u8; 3]; 8] = [
            [230, 159, 0],
            [86, 180, 233],
            [0, 158, 115],
            [240, 228, 66],
            [0, 114, 178],
            [213, 94, 0],
            [204, 121, 167],
            [153, 153, 153],
        ];
        let scale = (1u64 << MAX_DEPTH) as f64 / IMG as f64;
        for py in 0..IMG {
            for px in 0..IMG {
                let x = (px as f64 * scale) as u32;
                let y = ((IMG - 1 - py) as f64 * scale) as u32;
                let leaf = optipart::octree::neighbors::find_leaf(tree.leaves(), [x, y], curve)
                    .expect("complete tree covers the domain");
                let cell = tree.leaves()[leaf].cell;
                let mut rgb = palette[assign[leaf] % palette.len()];
                // Darken cell borders.
                let a = cell.anchor();
                let s = cell.side();
                let fx = x - a[0];
                let fy = y - a[1];
                let border = (scale * 1.5) as u32;
                if fx < border || fy < border || s - fx < border.max(1) || s - fy < border.max(1) {
                    rgb = [rgb[0] / 3, rgb[1] / 3, rgb[2] / 3];
                }
                let o = (py * IMG + px) * 3;
                img[o..o + 3].copy_from_slice(&rgb);
            }
        }
        let path = format!("partition_{}.ppm", curve.name());
        let mut f = std::fs::File::create(&path).expect("create image");
        write!(f, "P6\n{IMG} {IMG}\n255\n").unwrap();
        f.write_all(&img).unwrap();
        println!(
            "{curve}: {} leaves, {p} partitions, λ = {:.3} → {path}",
            tree.len(),
            out.report.lambda
        );
    }
}
