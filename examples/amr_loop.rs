//! AMR time-stepping with repeated repartitioning: a spherical refinement
//! front orbits the domain, the mesh follows it, and every step is
//! repartitioned — the scenario that motivates SFC partitioners (§1).
//!
//! Compares equal-work, fixed-tolerance and OptiPart repartitioning over the
//! whole run: total simulated time, energy, migration and ghost traffic.
//!
//! ```text
//! cargo run --release --example amr_loop
//! ```

use optipart::fem::{amr_simulation, AmrConfig, Strategy};
use optipart::machine::{AppModel, MachineModel, PerfModel};
use optipart::mpisim::Engine;

fn main() {
    let p = 8;
    let machine = MachineModel::cloudlab_clemson();
    println!(
        "AMR loop: orbiting refinement front, {p} ranks on the {} model\n",
        machine.name
    );
    println!(
        "{:<12} {:>9} {:>10} {:>11} {:>10} {:>10}",
        "strategy", "total_s", "energy_J", "migrated", "ghosts", "max λ"
    );

    for strategy in [
        Strategy::EqualWork,
        Strategy::Tolerance(0.3),
        Strategy::OptiPart,
        Strategy::OptiPartLatencyAware,
    ] {
        let cfg = AmrConfig {
            steps: 6,
            max_level: 7,
            matvecs_per_step: 60,
            strategy,
            ..Default::default()
        };
        let mut engine = Engine::new(
            p,
            PerfModel::new(machine.clone(), AppModel::laplacian_matvec()),
        );
        let rep = amr_simulation(&mut engine, &cfg);
        let migrated: u64 = rep.steps.iter().map(|s| s.migrated).sum();
        let max_lambda = rep.steps.iter().map(|s| s.lambda).fold(1.0f64, f64::max);
        println!(
            "{:<12} {:>9.3} {:>10.1} {:>11} {:>10} {:>10.3}",
            strategy.name(),
            rep.total_seconds,
            rep.total_energy_j,
            migrated,
            rep.total_ghosts,
            max_lambda
        );
    }
    println!("\nper-step detail for OptiPart:");
    let cfg = AmrConfig {
        steps: 6,
        max_level: 7,
        matvecs_per_step: 60,
        strategy: Strategy::OptiPart,
        ..Default::default()
    };
    let mut engine = Engine::new(p, PerfModel::new(machine, AppModel::laplacian_matvec()));
    let rep = amr_simulation(&mut engine, &cfg);
    println!(
        "{:>5} {:>9} {:>10} {:>8} {:>9}",
        "step", "elements", "migrated", "λ", "sec"
    );
    for s in &rep.steps {
        println!(
            "{:>5} {:>9} {:>10} {:>8.3} {:>9.4}",
            s.step, s.elements, s.migrated, s.lambda, s.seconds
        );
    }
}
