//! Demo of the fault-injection API: partition the same mesh on a clean and
//! a perturbed virtual machine and compare what the faults cost.
//!
//! ```text
//! cargo run --release --example fault_demo [seed]
//! ```

use optipart::core::optipart::{optipart, OptiPartOptions};
use optipart::core::partition::distribute_tree;
use optipart::machine::{AppModel, MachineModel, PerfModel};
use optipart::mpisim::{Engine, FaultPlan};
use optipart::octree::MeshParams;
use optipart::sfc::Curve;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(86);
    let p = 16;
    let tree = MeshParams::normal(6_000, seed).build::<3>(Curve::Hilbert);
    let opts = OptiPartOptions {
        amortize_over: Some(100),
        ..Default::default()
    };
    let perf = || {
        PerfModel::new(
            MachineModel::cloudlab_wisconsin(),
            AppModel::laplacian_matvec(),
        )
    };

    let mut clean = Engine::new(p, perf());
    let out_clean = optipart(&mut clean, distribute_tree(&tree, p), opts);

    let plan = FaultPlan::new(seed)
        .with_stragglers(0.25, 20.0)
        .with_tw_jitter(0.3)
        .with_transient_failures(0.2);
    let mut faulty = Engine::new(p, perf()).with_faults(plan);
    let out_faulty = optipart(&mut faulty, distribute_tree(&tree, p), opts);

    println!("mesh: {} cells, p = {p}, seed {seed}", tree.len());
    println!(
        "{:<10} {:>10} {:>12} {:>9} {:>8}",
        "machine", "tolerance", "makespan_s", "retries", "audits"
    );
    for (label, e, out) in [
        ("clean", &clean, &out_clean),
        ("faulty", &faulty, &out_faulty),
    ] {
        println!(
            "{label:<10} {:>10.4} {:>12.6} {:>9} {:>8}",
            out.report.achieved_tolerance,
            e.makespan(),
            e.stats().retries_total,
            e.stats().audited_collectives,
        );
    }
    let stragglers = faulty
        .rank_faults()
        .map(|f| f.straggler_ranks())
        .unwrap_or_default();
    println!("straggling ranks (20x slower): {stragglers:?}");
}
